// Staged, cache-blocked, allocation-free bit-GEMM microkernels.
//
// This is the functional analogue of the paper's §4.2 kernel structure. A
// simulated thread block computes raw popc accumulations for its virtual
// tile (vtm8 x vtn8 plane-interleaved rows) in three moves:
//
//   1. *Staging* (double caching, §4.1a/§4.2): the block's A and B rows —
//      which live scattered across per-plane BitMatrix storage and may be
//      virtual zero padding — are copied ONCE per k-strip into contiguous
//      per-thread panels. All subsequent accesses are dense unit-stride
//      loads, exactly as the device kernel reads tiles out of shared memory
//      instead of global row pointers.
//   2. *Microkernel* (fragment reuse): an 8x8 output tile walks the whole
//      k-strip in one call, holding the 8 B words of the current k-slab in
//      locals (registers) and the 64 partial sums in a local accumulator
//      block — the seed loop reloaded every B word 8x per 8x8 tile and
//      round-tripped accumulators through memory every 128-bit slab.
//   3. *Cache blocking*: k is walked in strips of kStripWords so the two
//      staged panels plus the accumulator tile stay cache-resident even for
//      large K; partial sums accumulate in place across strips.
//
// The microkernels are templated on the tensor-core BitOp so the op is
// resolved at compile time (one branch per block, not per word). All scratch
// comes from a parallel::ScratchArena — the hot path performs no heap
// allocation in steady state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512BW__)
#include <immintrin.h>
#endif

#include "src/tcsim/mma.hpp"

namespace apnn::parallel {
class ScratchArena;
}

namespace apnn::core::microkernel {

/// k-strip depth in 64-bit words. 32 words = 2048 k-bits = 16 bmma slabs:
/// the worst-case staged footprint (two 136-row panels) is ~70 KiB, which
/// fits L2 comfortably while amortizing the staging pass over many 8x8
/// tiles.
inline constexpr std::int64_t kStripWords = 32;

/// Compile-time SIMD flavor of the popcount kernels — part of the tuning
/// cache's hardware fingerprint (measurements from one flavor must never be
/// replayed under another).
#if defined(__AVX512BW__)
inline constexpr const char* kSimdFlavor = "avx512bw";
inline constexpr bool kHasRowBlockKernel = true;
#elif defined(__AVX2__)
inline constexpr const char* kSimdFlavor = "avx2";
inline constexpr bool kHasRowBlockKernel = true;
#else
inline constexpr const char* kSimdFlavor = "scalar";
inline constexpr bool kHasRowBlockKernel = false;
#endif

/// One 64-bit lane of the 1-bit dot product: popc(a XOR b) or popc(a AND b),
/// selected at compile time.
template <tcsim::BitOp Op>
inline std::int32_t bit_dot_word(std::uint64_t a, std::uint64_t b) {
  if constexpr (Op == tcsim::BitOp::kXor) {
    return __builtin_popcountll(a ^ b);
  } else {
    return __builtin_popcountll(a & b);
  }
}

#if defined(__AVX512BW__)

namespace detail {

/// Per-byte popcount of a 512-bit vector via the 4-bit pshufb lookup
/// (Muła's technique): two table shuffles + an add per 64 bytes. The table
/// is spelled as a full _mm512_set_epi8 constant (high byte first, the
/// 16-byte nibble table repeated per 128-bit lane) rather than
/// _mm512_broadcast_i32x4, whose _mm512_undefined_epi32 seed trips gcc's
/// -Wmaybe-uninitialized at -O3 (GCC PR105593); the constant loads
/// identically.
inline __m512i popcount_bytes512(__m512i v) {
  const __m512i lookup = _mm512_set_epi8(
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0);
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low_mask);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
  return _mm512_add_epi8(_mm512_shuffle_epi8(lookup, lo),
                         _mm512_shuffle_epi8(lookup, hi));
}

template <tcsim::BitOp Op>
inline __m512i bit_op512(__m512i a, __m512i b) {
  if constexpr (Op == tcsim::BitOp::kXor) {
    return _mm512_xor_si512(a, b);
  } else {
    return _mm512_and_si512(a, b);
  }
}

/// Horizontal sum of the eight 64-bit lanes. Open-coded instead of
/// _mm512_reduce_add_epi64: gcc lowers that (and even the plain 512→256
/// cast) through extracts seeded with _mm256_undefined_*, which trips
/// -Wmaybe-uninitialized at -O3 (GCC PR105593); the maskz extracts seed
/// with zeros and generate the same instructions.
inline std::int64_t hsum_epi64_512(__m512i v) {
  const __m256i lo = _mm512_maskz_extracti64x4_epi64(0xff, v, 0);
  const __m256i hi = _mm512_maskz_extracti64x4_epi64(0xff, v, 1);
  const __m256i s = _mm256_add_epi64(lo, hi);
  const __m128i lo128 = _mm256_castsi256_si128(s);
  const __m128i hi128 = _mm256_extracti128_si256(s, 1);
  const __m128i s2 = _mm_add_epi64(lo128, hi128);
  return _mm_cvtsi128_si64(s2) + _mm_extract_epi64(s2, 1);
}

}  // namespace detail

/// 8x8 k-strip microkernel, AVX-512BW flavor: same structure as the AVX2
/// path below (one A row against all 8 staged B rows, byte-wise counter
/// registers, one psadbw reduction per chunk) but 512 bits / 8 words per
/// step — double the popcount throughput per shuffle-port cycle.
template <tcsim::BitOp Op>
inline void tile_8x8_strip(const std::uint64_t* a, std::int64_t lda,
                           const std::uint64_t* b, std::int64_t ldb,
                           std::int64_t words, std::int32_t* acc,
                           std::int64_t ldacc) {
  constexpr std::int64_t kWordsPerStep = 8;   // 512 bits
  constexpr std::int64_t kMaxStepsPerChunk = 31;  // byte counters < 256
  const std::uint64_t* bp[8];
  for (int j = 0; j < 8; ++j) bp[j] = b + j * ldb;

  for (int i = 0; i < 8; ++i) {
    const std::uint64_t* ap = a + i * lda;
    std::int64_t c[8] = {0};
    std::int64_t w = 0;
    while (words - w >= kWordsPerStep) {
      const std::int64_t steps = std::min<std::int64_t>(
          (words - w) / kWordsPerStep, kMaxStepsPerChunk);
      __m512i b0 = _mm512_setzero_si512(), b1 = b0, b2 = b0, b3 = b0;
      __m512i b4 = b0, b5 = b0, b6 = b0, b7 = b0;
      for (std::int64_t s = 0; s < steps; ++s, w += kWordsPerStep) {
        const __m512i av = _mm512_loadu_si512(ap + w);
        b0 = _mm512_add_epi8(b0, detail::popcount_bytes512(
                detail::bit_op512<Op>(av, _mm512_loadu_si512(bp[0] + w))));
        b1 = _mm512_add_epi8(b1, detail::popcount_bytes512(
                detail::bit_op512<Op>(av, _mm512_loadu_si512(bp[1] + w))));
        b2 = _mm512_add_epi8(b2, detail::popcount_bytes512(
                detail::bit_op512<Op>(av, _mm512_loadu_si512(bp[2] + w))));
        b3 = _mm512_add_epi8(b3, detail::popcount_bytes512(
                detail::bit_op512<Op>(av, _mm512_loadu_si512(bp[3] + w))));
        b4 = _mm512_add_epi8(b4, detail::popcount_bytes512(
                detail::bit_op512<Op>(av, _mm512_loadu_si512(bp[4] + w))));
        b5 = _mm512_add_epi8(b5, detail::popcount_bytes512(
                detail::bit_op512<Op>(av, _mm512_loadu_si512(bp[5] + w))));
        b6 = _mm512_add_epi8(b6, detail::popcount_bytes512(
                detail::bit_op512<Op>(av, _mm512_loadu_si512(bp[6] + w))));
        b7 = _mm512_add_epi8(b7, detail::popcount_bytes512(
                detail::bit_op512<Op>(av, _mm512_loadu_si512(bp[7] + w))));
      }
      const __m512i zero = _mm512_setzero_si512();
      c[0] += detail::hsum_epi64_512(_mm512_sad_epu8(b0, zero));
      c[1] += detail::hsum_epi64_512(_mm512_sad_epu8(b1, zero));
      c[2] += detail::hsum_epi64_512(_mm512_sad_epu8(b2, zero));
      c[3] += detail::hsum_epi64_512(_mm512_sad_epu8(b3, zero));
      c[4] += detail::hsum_epi64_512(_mm512_sad_epu8(b4, zero));
      c[5] += detail::hsum_epi64_512(_mm512_sad_epu8(b5, zero));
      c[6] += detail::hsum_epi64_512(_mm512_sad_epu8(b6, zero));
      c[7] += detail::hsum_epi64_512(_mm512_sad_epu8(b7, zero));
    }
    for (; w < words; ++w) {  // scalar tail (< 8 words)
      const std::uint64_t av = ap[w];
      for (int j = 0; j < 8; ++j) c[j] += bit_dot_word<Op>(av, bp[j][w]);
    }
    std::int32_t* out = acc + i * ldacc;
    for (int j = 0; j < 8; ++j) out[j] += static_cast<std::int32_t>(c[j]);
  }
}

#elif defined(__AVX2__)

namespace detail {

/// Per-byte popcount of a 256-bit vector via the 4-bit pshufb lookup
/// (Muła's technique): two table shuffles + an add per 32 bytes.
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

template <tcsim::BitOp Op>
inline __m256i bit_op256(__m256i a, __m256i b) {
  if constexpr (Op == tcsim::BitOp::kXor) {
    return _mm256_xor_si256(a, b);
  } else {
    return _mm256_and_si256(a, b);
  }
}

/// Horizontal sum of the four 64-bit lanes.
inline std::int64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

}  // namespace detail

/// 8x8 k-strip microkernel: for i, j in [0, 8),
///   acc[i * ldacc + j] += sum_{w < words} popc(op(a[i*lda + w], b[j*ldb + w]))
/// One A row at a time against all 8 staged B rows, 256 bits (4 words) per
/// step. The partial counts accumulate BYTE-wise in 8 ymm registers across
/// the whole strip — the register-fragment reuse of §4.1a — and are reduced
/// with a single psadbw per B row per chunk, keeping the shuffle-port
/// pressure (the throughput limit of pshufb popcounts) at two shuffles per
/// 32 bytes. Byte counters saturate at 255, so chunks are capped at 31
/// steps (31 * 8 = 248 max per byte).
template <tcsim::BitOp Op>
inline void tile_8x8_strip(const std::uint64_t* a, std::int64_t lda,
                           const std::uint64_t* b, std::int64_t ldb,
                           std::int64_t words, std::int32_t* acc,
                           std::int64_t ldacc) {
  constexpr std::int64_t kWordsPerStep = 4;   // 256 bits
  constexpr std::int64_t kMaxStepsPerChunk = 31;
  const std::uint64_t* bp[8];
  for (int j = 0; j < 8; ++j) bp[j] = b + j * ldb;

  for (int i = 0; i < 8; ++i) {
    const std::uint64_t* ap = a + i * lda;
    std::int64_t c[8] = {0};
    std::int64_t w = 0;
    while (words - w >= kWordsPerStep) {
      const std::int64_t steps = std::min<std::int64_t>(
          (words - w) / kWordsPerStep, kMaxStepsPerChunk);
      __m256i b0 = _mm256_setzero_si256(), b1 = b0, b2 = b0, b3 = b0;
      __m256i b4 = b0, b5 = b0, b6 = b0, b7 = b0;
      for (std::int64_t s = 0; s < steps; ++s, w += kWordsPerStep) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + w));
        b0 = _mm256_add_epi8(b0, detail::popcount_bytes(detail::bit_op256<Op>(
                av, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bp[0] + w)))));
        b1 = _mm256_add_epi8(b1, detail::popcount_bytes(detail::bit_op256<Op>(
                av, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bp[1] + w)))));
        b2 = _mm256_add_epi8(b2, detail::popcount_bytes(detail::bit_op256<Op>(
                av, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bp[2] + w)))));
        b3 = _mm256_add_epi8(b3, detail::popcount_bytes(detail::bit_op256<Op>(
                av, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bp[3] + w)))));
        b4 = _mm256_add_epi8(b4, detail::popcount_bytes(detail::bit_op256<Op>(
                av, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bp[4] + w)))));
        b5 = _mm256_add_epi8(b5, detail::popcount_bytes(detail::bit_op256<Op>(
                av, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bp[5] + w)))));
        b6 = _mm256_add_epi8(b6, detail::popcount_bytes(detail::bit_op256<Op>(
                av, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bp[6] + w)))));
        b7 = _mm256_add_epi8(b7, detail::popcount_bytes(detail::bit_op256<Op>(
                av, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bp[7] + w)))));
      }
      const __m256i zero = _mm256_setzero_si256();
      c[0] += detail::hsum_epi64(_mm256_sad_epu8(b0, zero));
      c[1] += detail::hsum_epi64(_mm256_sad_epu8(b1, zero));
      c[2] += detail::hsum_epi64(_mm256_sad_epu8(b2, zero));
      c[3] += detail::hsum_epi64(_mm256_sad_epu8(b3, zero));
      c[4] += detail::hsum_epi64(_mm256_sad_epu8(b4, zero));
      c[5] += detail::hsum_epi64(_mm256_sad_epu8(b5, zero));
      c[6] += detail::hsum_epi64(_mm256_sad_epu8(b6, zero));
      c[7] += detail::hsum_epi64(_mm256_sad_epu8(b7, zero));
    }
    for (; w < words; ++w) {  // scalar tail (< 4 words)
      const std::uint64_t av = ap[w];
      for (int j = 0; j < 8; ++j) c[j] += bit_dot_word<Op>(av, bp[j][w]);
    }
    std::int32_t* out = acc + i * ldacc;
    for (int j = 0; j < 8; ++j) out[j] += static_cast<std::int32_t>(c[j]);
  }
}

#else  // scalar fallback

/// 8x8 k-strip microkernel: for i, j in [0, 8),
///   acc[i * ldacc + j] += sum_{w < words} popc(op(a[i*lda + w], b[j*ldb + w]))
/// One A row is processed at a time with its 8 partial sums pinned in
/// registers for the whole k-strip — the register-fragment reuse of §4.1a.
/// The 8 B rows of the staged panel (a strip is at most 8 * kStripWords * 8
/// = 2 KiB) stay L1-resident, so re-walking them per A row is cheap; what
/// the seed loop paid for was the accumulator round trip through memory on
/// every 128-bit slab, which this shape eliminates entirely.
template <tcsim::BitOp Op>
inline void tile_8x8_strip(const std::uint64_t* a, std::int64_t lda,
                           const std::uint64_t* b, std::int64_t ldb,
                           std::int64_t words, std::int32_t* acc,
                           std::int64_t ldacc) {
  const std::uint64_t* b0p = b + 0 * ldb;
  const std::uint64_t* b1p = b + 1 * ldb;
  const std::uint64_t* b2p = b + 2 * ldb;
  const std::uint64_t* b3p = b + 3 * ldb;
  const std::uint64_t* b4p = b + 4 * ldb;
  const std::uint64_t* b5p = b + 5 * ldb;
  const std::uint64_t* b6p = b + 6 * ldb;
  const std::uint64_t* b7p = b + 7 * ldb;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t* ap = a + i * lda;
    std::int32_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    std::int32_t c4 = 0, c5 = 0, c6 = 0, c7 = 0;
    for (std::int64_t w = 0; w < words; ++w) {
      const std::uint64_t av = ap[w];
      c0 += bit_dot_word<Op>(av, b0p[w]);
      c1 += bit_dot_word<Op>(av, b1p[w]);
      c2 += bit_dot_word<Op>(av, b2p[w]);
      c3 += bit_dot_word<Op>(av, b3p[w]);
      c4 += bit_dot_word<Op>(av, b4p[w]);
      c5 += bit_dot_word<Op>(av, b5p[w]);
      c6 += bit_dot_word<Op>(av, b6p[w]);
      c7 += bit_dot_word<Op>(av, b7p[w]);
    }
    std::int32_t* out = acc + i * ldacc;
    out[0] += c0;
    out[1] += c1;
    out[2] += c2;
    out[3] += c3;
    out[4] += c4;
    out[5] += c5;
    out[6] += c6;
    out[7] += c7;
  }
}

#endif  // SIMD dispatch

/// Runtime-op dispatch of tile_8x8_strip (single branch per call).
inline void tile_8x8_strip(tcsim::BitOp op, const std::uint64_t* a,
                           std::int64_t lda, const std::uint64_t* b,
                           std::int64_t ldb, std::int64_t words,
                           std::int32_t* acc, std::int64_t ldacc) {
  if (op == tcsim::BitOp::kXor) {
    tile_8x8_strip<tcsim::BitOp::kXor>(a, lda, b, ldb, words, acc, ldacc);
  } else {
    tile_8x8_strip<tcsim::BitOp::kAnd>(a, lda, b, ldb, words, acc, ldacc);
  }
}

/// Runtime-tunable execution knobs of block_bitgemm — the host analogue of
/// the §4.3 device tiling parameters the paper tunes per layer. The defaults
/// reproduce the historical fixed behavior; core::Autotuner measures
/// alternatives per stage on the real operands and bakes the winner into the
/// session's ExecutionPlan.
struct MicroConfig {
  /// k-strip depth in 64-bit words (cache-blocking granularity); 0 selects
  /// the kStripWords default. Small strips trade staging amortization for a
  /// smaller cache footprint — which side wins depends on the stage's K and
  /// on how many virtual rows a block stages.
  std::int64_t strip_words = 0;

  /// Which staging layout + inner-kernel pair runs the k-sweep.
  enum class Staging {
    kAuto,        ///< transposed row-block kernel when the build has SIMD
    kTransposed,  ///< force the word-interleaved row-block kernel
    kRowMajor,    ///< force row-major staging + the 8x8 tile kernel
  };
  Staging staging = Staging::kAuto;

  /// Data-sparsity fast path: zero-word occupancy maps built while panels
  /// stage, consulted by skip-zero popcount kernels. Bit-exact for every
  /// setting — a skipped word contributes exactly zero to the accumulator
  /// (AND: either operand word zero; XOR: both zero).
  enum class Sparse {
    kAuto,  ///< build occupancy maps; per strip, engage the skip kernels
            ///< only when the staged zero-word share clears the density
            ///< gate, so dense operands keep the dense sweep
    kOn,    ///< always run the occupancy-consulting kernels
    kOff,   ///< dense sweep, no occupancy build (pre-sparsity behavior)
  };
  Sparse sparse_staging = Sparse::kAuto;

  std::int64_t effective_strip() const {
    return strip_words > 0 ? strip_words : kStripWords;
  }

  bool operator==(const MicroConfig& o) const {
    return strip_words == o.strip_words && staging == o.staging &&
           sparse_staging == o.sparse_staging;
  }
};

/// Cumulative data-sparsity observations of the staged k-sweeps — how often
/// the occupancy machinery actually pays off in production. One instance may
/// aggregate any number of concurrent block_bitgemm calls (counters are
/// atomic; each block adds its locally summed counts once). Plane counters
/// are filled by the combine layer (plane elision), not the microkernel.
struct SparsityStats {
  std::atomic<std::int64_t> staged_words{0};   ///< words staged (A + B)
  std::atomic<std::int64_t> zero_words{0};     ///< of which all-zero
  std::atomic<std::int64_t> sparse_strips{0};  ///< strips via skip kernels
  std::atomic<std::int64_t> dense_strips{0};   ///< strips via dense sweep
  std::atomic<std::int64_t> planes{0};         ///< operand planes examined
  std::atomic<std::int64_t> planes_elided{0};  ///< all-zero planes dropped

  void reset() {
    staged_words.store(0, std::memory_order_relaxed);
    zero_words.store(0, std::memory_order_relaxed);
    sparse_strips.store(0, std::memory_order_relaxed);
    dense_strips.store(0, std::memory_order_relaxed);
    planes.store(0, std::memory_order_relaxed);
    planes_elided.store(0, std::memory_order_relaxed);
  }

  /// Fraction of staged 64-bit words that were all-zero (0 when nothing
  /// staged yet).
  double zero_word_fraction() const {
    const std::int64_t total = staged_words.load(std::memory_order_relaxed);
    if (total <= 0) return 0.0;
    return static_cast<double>(zero_words.load(std::memory_order_relaxed)) /
           static_cast<double>(total);
  }
};

/// Copies words [w0, w0 + words) of each row into a contiguous panel
/// (row i at panel + i * words). A nullptr row stands for virtual zero
/// padding (out-of-range rows of the plane-interleaved tile) and stages as
/// zeros, so the microkernel never branches on row validity.
void stage_panel(const std::uint64_t* const* rows, std::int64_t nrows,
                 std::int64_t w0, std::int64_t words, std::uint64_t* panel);

/// Word-interleaved variant: panel[w * nrows + j] = rows[j][w0 + w]. The
/// SIMD row-block kernels stage B this way so one vector load spans word w
/// of several consecutive output columns and psadbw lanes align with
/// columns (no per-element horizontal reduction).
void stage_panel_transposed(const std::uint64_t* const* rows,
                            std::int64_t nrows, std::int64_t w0,
                            std::int64_t words, std::uint64_t* panel);

/// Words of occupancy bitmap per staged row: one bit per staged 64-bit
/// word, packed into uint64 mask words.
constexpr std::int64_t occ_words(std::int64_t words) {
  return (words + 63) / 64;
}

/// Occupancy mask of up to 64 consecutive words: bit w set iff src[w] != 0.
/// A word-at-a-time compare-shift-or chain is slow enough to cost dense
/// workloads several percent at staging time; the SIMD forms test 8 (or 4)
/// words per issue, keeping the occupancy build within memcpy noise.
inline std::uint64_t occ_scan(const std::uint64_t* src, std::int64_t words) {
  std::uint64_t m = 0;
  std::int64_t w = 0;
#if defined(__AVX512BW__)
  for (; w + 8 <= words; w += 8) {
    const __m512i v = _mm512_loadu_si512(src + w);
    m |= static_cast<std::uint64_t>(_mm512_test_epi64_mask(v, v)) << w;
  }
#elif defined(__AVX2__)
  const __m256i zero = _mm256_setzero_si256();
  for (; w + 4 <= words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const unsigned z = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, zero))));
    m |= static_cast<std::uint64_t>(~z & 0xfu) << w;
  }
#endif
  for (; w < words; ++w) {
    m |= static_cast<std::uint64_t>(src[w] != 0) << w;
  }
  return m;
}

/// Fills the occupancy words of one row from its contiguous staged (or
/// source) form; returns how many of `words` are zero.
inline std::int64_t occ_scan_row(const std::uint64_t* src, std::int64_t words,
                                 std::uint64_t* oc) {
  std::int64_t zeros = 0;
  for (std::int64_t c = 0; c * 64 < words; ++c) {
    const std::int64_t n = std::min<std::int64_t>(64, words - c * 64);
    oc[c] = occ_scan(src + c * 64, n);
    zeros += n - __builtin_popcountll(oc[c]);
  }
  return zeros;
}

/// stage_panel + zero-word occupancy map: bit (w % 64) of
/// occ[i * occ_words(words) + w / 64] is set iff row i's staged word w is
/// NONZERO; mask bits past `words` stay clear. Returns the number of
/// all-zero staged words (the density-gate input).
std::int64_t stage_panel_occ(const std::uint64_t* const* rows,
                             std::int64_t nrows, std::int64_t w0,
                             std::int64_t words, std::uint64_t* panel,
                             std::uint64_t* occ);

/// stage_panel_transposed + the same occupancy map (occ stays row-indexed
/// even though the panel is word-interleaved).
std::int64_t stage_panel_transposed_occ(const std::uint64_t* const* rows,
                                        std::int64_t nrows, std::int64_t w0,
                                        std::int64_t words,
                                        std::uint64_t* panel,
                                        std::uint64_t* occ);

/// Where block_bitgemm's B-panel k-strips come from. The staging pass is
/// the only place the microkernel touches operand storage, so abstracting
/// it lets the same GEMM sweep run over operands that are never
/// materialized as row-major matrices: RowPointerSource wraps precomputed
/// row-pointer tables (contiguous BitPlanes — the APMM case), and
/// layout::WindowGatherSource assembles convolution patch rows on the fly
/// from the packed feature-map planes (im2col-free APConv, §4.2).
class PanelSource {
 public:
  virtual ~PanelSource() = default;

  /// Number of virtual rows this source stages (a multiple of 8).
  virtual std::int64_t rows() const = 0;

  /// Row-major staging: words [w0, w0 + words) of every virtual row into
  /// panel (row j at panel + j * words). Out-of-range virtual rows stage as
  /// zeros.
  virtual void stage(std::int64_t w0, std::int64_t words,
                     std::uint64_t* panel) const = 0;

  /// Word-interleaved staging: panel[w * rows() + j] = row j's word w0 + w.
  /// The default assembles row-major into `scratch` (rows() * words words,
  /// provided by the caller) and interleaves; sources with contiguous rows
  /// override and ignore `scratch`.
  virtual void stage_transposed(std::int64_t w0, std::int64_t words,
                                std::uint64_t* panel,
                                std::uint64_t* scratch) const;

  /// Occupancy-building variants (see stage_panel_occ): same panels as
  /// stage()/stage_transposed() plus the per-row zero-word bitmap, returning
  /// the all-zero staged word count. The defaults stage densely and then
  /// scan the panel; sources that copy word-by-word override and fold the
  /// occupancy test into the copy (one compare per word already in
  /// registers).
  virtual std::int64_t stage_occ(std::int64_t w0, std::int64_t words,
                                 std::uint64_t* panel,
                                 std::uint64_t* occ) const;
  virtual std::int64_t stage_transposed_occ(std::int64_t w0,
                                            std::int64_t words,
                                            std::uint64_t* panel,
                                            std::uint64_t* scratch,
                                            std::uint64_t* occ) const;

  /// True when stage_transposed never touches `scratch` (the caller then
  /// skips allocating it).
  virtual bool direct_transpose() const { return false; }
};

/// PanelSource over a plane-interleaved row-pointer table (nullptr = zero
/// row): the staging scheme of the contiguous-operand (APMM) path.
class RowPointerSource final : public PanelSource {
 public:
  RowPointerSource(const std::uint64_t* const* rows, std::int64_t nrows)
      : rows_(rows), nrows_(nrows) {}

  std::int64_t rows() const override { return nrows_; }
  void stage(std::int64_t w0, std::int64_t words,
             std::uint64_t* panel) const override {
    stage_panel(rows_, nrows_, w0, words, panel);
  }
  void stage_transposed(std::int64_t w0, std::int64_t words,
                        std::uint64_t* panel,
                        std::uint64_t* /*scratch*/) const override {
    stage_panel_transposed(rows_, nrows_, w0, words, panel);
  }
  std::int64_t stage_occ(std::int64_t w0, std::int64_t words,
                         std::uint64_t* panel,
                         std::uint64_t* occ) const override {
    return stage_panel_occ(rows_, nrows_, w0, words, panel, occ);
  }
  std::int64_t stage_transposed_occ(std::int64_t w0, std::int64_t words,
                                    std::uint64_t* panel,
                                    std::uint64_t* /*scratch*/,
                                    std::uint64_t* occ) const override {
    return stage_panel_transposed_occ(rows_, nrows_, w0, words, panel, occ);
  }
  bool direct_transpose() const override { return true; }

 private:
  const std::uint64_t* const* rows_;
  std::int64_t nrows_;
};

/// Block-level driver: for a block's plane-interleaved A row-pointer table
/// (rows8 entries, a multiple of 8; nullptr = zero row) and B panel source
/// (rows() a multiple of 8), accumulates
///   acc[i * b.rows() + j] += sum_{w < row_words} popc(op(a_i[w], b_j[w]))
/// walking k in micro.effective_strip() strips, staging each strip once,
/// and invoking the inner kernel micro selects per output tile. All
/// temporaries come from `arena` (valid until the caller's next reset()).
/// The result is bit-identical for every MicroConfig — the knobs only move
/// bytes. `stats`, when given, receives this call's locally summed sparsity
/// counters (one atomic add per counter per call).
void block_bitgemm(tcsim::BitOp op, const std::uint64_t* const* a_rows,
                   std::int64_t rows8, const PanelSource& b,
                   std::int64_t row_words, std::int32_t* acc,
                   parallel::ScratchArena& arena,
                   const MicroConfig& micro = {},
                   SparsityStats* stats = nullptr);

/// Row-pointer-table convenience overload (wraps RowPointerSource).
void block_bitgemm(tcsim::BitOp op, const std::uint64_t* const* a_rows,
                   std::int64_t rows8, const std::uint64_t* const* b_rows,
                   std::int64_t cols8, std::int64_t row_words,
                   std::int32_t* acc, parallel::ScratchArena& arena,
                   const MicroConfig& micro = {},
                   SparsityStats* stats = nullptr);

}  // namespace apnn::core::microkernel

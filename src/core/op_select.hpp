// Data-adaptive operator selection (paper §3.2).
//
// The 1-bit planes of quantized tensors can encode different value pairs;
// the right tensor-core bit op and post-accumulation transform depend on the
// encodings of both operands:
//
//   Case I   : W in {0,1},  X in {0,1}   -> AND;  dot = popc
//   Case II  : W in {-1,1}, X in {-1,1}  -> XOR;  dot = n - 2*popc
//   Case III : W in {-1,1}, X in {0,1}   -> AND on W^=(W+J)/2;
//              dot = 2*popc(W^ & X) - popc(X)
//
// We additionally support a two's-complement extension for signed multi-bit
// operands (MSB plane weighted -2^(p-1)); the paper needs only the three
// cases above.
#pragma once

#include <cstdint>

#include "src/common/check.hpp"
#include "src/tcsim/mma.hpp"

namespace apnn::core {

/// What the bits of an operand's planes encode.
enum class Encoding {
  kUnsigned01,       ///< planes are positional bits of an unsigned integer
  kSignedPM1,        ///< single plane, bit 0/1 encode -1/+1 (p or q must be 1)
  kTwosComplement,   ///< positional bits of a two's-complement integer
};

enum class EmulationCase { kCaseI, kCaseII, kCaseIII };

/// Stable short name ("I", "II", "III") — used by the tuning-cache key
/// schema and diagnostics; never reorder the enum without bumping the cache
/// schema version (core::TuningCache).
const char* emulation_case_name(EmulationCase kind);

struct OpSelection {
  EmulationCase kind = EmulationCase::kCaseI;
  tcsim::BitOp bit_op = tcsim::BitOp::kAnd;
};

/// Encoding pair for a GEMM / convolution.
struct EncodingConfig {
  Encoding w = Encoding::kUnsigned01;
  Encoding x = Encoding::kUnsigned01;
};

/// Picks the emulation case + tensor-core bit op for an encoding pair.
/// kSignedPM1 x kUnsigned01 (and only that signed/unsigned mix) maps to
/// Case III; kUnsigned01/kTwosComplement pairs use Case I's AND datapath.
OpSelection select_operator(const EncodingConfig& enc);

/// Post-accumulation transform of one (s, t) plane-pair partial product:
/// turns the raw popc accumulation `raw` over `k` valid bits into the
/// integer partial dot. `x_popc` is popc of the X plane row (Case III only).
inline std::int64_t finalize_partial(EmulationCase kind, std::int64_t raw,
                                     std::int64_t k, std::int64_t x_popc) {
  switch (kind) {
    case EmulationCase::kCaseI: return raw;
    case EmulationCase::kCaseII: return k - 2 * raw;
    case EmulationCase::kCaseIII: return 2 * raw - x_popc;
  }
  return 0;
}

/// Positional weight of plane s under an encoding ("bit combination"
/// multiplier): 2^s, except the sign-flipped MSB for two's complement and a
/// unit weight for the single ±1 plane.
inline std::int64_t plane_multiplier(Encoding enc, int s, int bits) {
  switch (enc) {
    case Encoding::kUnsigned01:
      return std::int64_t{1} << s;
    case Encoding::kSignedPM1:
      APNN_DCHECK(bits == 1) << "kSignedPM1 requires 1 bit";
      return 1;
    case Encoding::kTwosComplement:
      return s == bits - 1 ? -(std::int64_t{1} << s) : (std::int64_t{1} << s);
  }
  return 1;
}

/// Integer value range an encoding/bit-width can represent, inclusive.
struct ValueRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};
ValueRange encoding_range(Encoding enc, int bits);

/// Maps a logical value (e.g. -1/+1, or a signed integer) to the
/// non-negative plane code stored in bit planes.
std::int32_t encode_value(Encoding enc, int bits, std::int64_t value);

/// Inverse of encode_value.
std::int64_t decode_value(Encoding enc, int bits, std::int32_t code);

}  // namespace apnn::core

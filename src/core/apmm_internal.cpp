#include "src/core/apmm_internal.hpp"

#include <algorithm>
#include <atomic>
#include <optional>

#include "src/core/microkernel.hpp"
#include "src/layout/im2col.hpp"
#include "src/parallel/scratch.hpp"

namespace apnn::core::internal {

namespace {

/// Pool the geometry's block loops run on (nullptr = process-global).
ThreadPool& geometry_pool(const BatchedGeometry& g) {
  return g.pool != nullptr ? *g.pool : ThreadPool::global();
}

}  // namespace

BatchedGeometry make_geometry(const ApOperand& w, const ApOperand& x,
                              const TileConfig& tile) {
  return make_geometry(w.rows(), x.rows(), w.cols(), w.bits(), x.bits(),
                       tile);
}

BatchedGeometry make_geometry(std::int64_t m, std::int64_t n, std::int64_t k,
                              int p, int q, const TileConfig& tile,
                              std::int64_t col_align) {
  BatchedGeometry g;
  g.m = m;
  g.n = n;
  g.k = k;
  g.p = p;
  g.q = q;
  g.tile = tile;
  // Blocks own whole output elements (all p*q plane partials), so the block
  // tile is expressed in output space and expanded by the plane counts.
  g.om = std::max<std::int64_t>(1, tile.bm / g.p);
  g.on = round_up(std::max<std::int64_t>(1, tile.bn / g.q), col_align);
  g.vtm = g.om * g.p;
  g.vtn = g.on * g.q;
  g.vtm8 = round_up(g.vtm, 8);
  g.vtn8 = round_up(g.vtn, 8);
  g.grid_m = ceil_div(g.m, g.om);
  g.grid_n = ceil_div(g.n, g.on);
  g.blocks = g.grid_m * g.grid_n;
  g.row_words = bitops::padded_words(k);
  g.ktiles = g.row_words / bitops::kWordsPerTile;
  return g;
}

tcsim::KernelProfile batched_profile(const BatchedGeometry& g,
                                     const OpSelection& sel,
                                     const ApmmOptions& opts,
                                     const Epilogue& epi,
                                     const std::string& name,
                                     std::int64_t store_scale,
                                     std::int64_t extra_alu_per_out) {
  tcsim::KernelProfile prof;
  prof.name = name;
  prof.family = "apnn";
  prof.grid_blocks = g.blocks;
  prof.threads_per_block = g.tile.warps_per_block() * 32;
  prof.shmem_per_block = g.tile.shmem_bytes();
  prof.ci = compute_intensity(g.tile);
  auto& c = prof.counters;
  c.kernel_launches = 1;

  const std::int64_t tile_bits = (g.vtm + g.vtn) * g.tile.bk;
  const int wr = g.tile.warp_rows, wc = g.tile.warp_cols;
  const std::int64_t wm_t = ceil_div(g.vtm, wr), wn_t = ceil_div(g.vtn, wc);
  const std::int64_t warp_bits = static_cast<std::int64_t>(wr) * wc *
                                 (wm_t + wn_t) * g.tile.bk;

  if (opts.double_caching) {
    // Warps collaboratively stage tiles in SHMEM, then fetch their subtiles.
    c.global_load_bytes += g.blocks * g.ktiles * tile_bits / 8;
    c.shared_store_bytes += g.blocks * g.ktiles * tile_bits / 8;
    c.shared_load_bytes += g.blocks * g.ktiles * warp_bits / 8;
  } else {
    // Each warp pulls its own tiles straight from global memory.
    c.global_load_bytes += g.blocks * g.ktiles * warp_bits / 8;
  }

  if (!opts.fragment_caching) {
    // Partial accumulators spill to SHMEM and reload every k-tile instead of
    // staying in register fragments.
    c.shared_store_bytes += g.blocks * g.ktiles * g.vtm8 * g.vtn8 * 4;
    c.shared_load_bytes += g.blocks * g.ktiles * g.vtm8 * g.vtn8 * 4;
  }

  c.bmma_b1 += g.blocks * g.ktiles * (g.vtm8 / 8) * (g.vtn8 / 8);

  if (sel.kind == EmulationCase::kCaseIII) {
    // J·X correction: one popc per loaded feature word.
    c.alu_combine_ops += g.q * g.n * g.row_words;
  }

  const std::int64_t out_per_block =
      std::max<std::int64_t>(1, g.om * g.on / store_scale);
  if (opts.semantic_aware) {
    // In-SHMEM reduction of the p*q partials of each output element.
    c.shared_store_bytes += g.blocks * g.vtm * g.vtn * 4;
    c.shared_load_bytes += g.blocks * g.vtm * g.vtn * 4;
    c.alu_combine_ops += g.blocks * g.vtm * g.vtn * 2;
    c.alu_epilogue_ops +=
        g.blocks * out_per_block *
        (epi.alu_ops_per_element() + extra_alu_per_out);
    if (epi.has_quant) {
      const int qo = epi.quant.bits;
      // Plane split (shift+and per bit) plus one ballot per 32 lanes/plane.
      c.alu_decompose_ops += g.blocks * out_per_block * qo;
      c.alu_decompose_ops += g.blocks * ceil_div(out_per_block, 32) * qo;
      c.global_store_bytes += g.blocks * ceil_div(out_per_block, 32) * 4 * qo;
    } else {
      c.global_store_bytes += g.blocks * out_per_block * 4;
    }
  } else {
    // Partials leave the kernel unreduced; a second kernel combines them.
    c.global_store_bytes += g.blocks * g.vtm * g.vtn * 4;
  }
  return prof;
}

tcsim::KernelProfile combine_kernel_profile(const BatchedGeometry& g,
                                            const Epilogue& epi) {
  tcsim::KernelProfile prof;
  prof.name = "bit-combine";
  prof.family = "apnn";
  prof.grid_blocks = ceil_div(g.m * g.n, 4096);
  prof.threads_per_block = 256;
  prof.ci = 0;
  auto& c = prof.counters;
  c.kernel_launches = 1;
  c.global_load_bytes += g.p * g.q * g.m * g.n * 4;
  c.alu_combine_ops += g.p * g.q * g.m * g.n * 2;
  c.alu_epilogue_ops += g.m * g.n * epi.alu_ops_per_element();
  if (epi.has_quant) {
    const int qo = epi.quant.bits;
    c.alu_decompose_ops += g.m * g.n * qo + ceil_div(g.m * g.n, 32) * qo;
    c.global_store_bytes += ceil_div(g.m * g.n, 32) * 4 * qo;
  } else {
    c.global_store_bytes += g.m * g.n * 4;
  }
  return prof;
}

namespace {

/// Combines the raw popc partials of one output element (all p*q plane
/// pairs) into the integer dot product. `raw_row` points at the element's
/// first plane row (raw + (mo*p)*vtn8 + no*q).
inline std::int64_t combine_element(const BatchedGeometry& g,
                                    const OpSelection& sel,
                                    const std::int32_t* raw_row,
                                    const std::int64_t* wmult,
                                    const std::int64_t* xmult,
                                    const std::int64_t* xpopc_col,
                                    std::uint32_t elide_w,
                                    std::uint32_t elide_x) {
  std::int64_t acc = 0;
  for (int s = 0; s < g.p; ++s) {
    if ((elide_w >> s) & 1) continue;  // term exactly zero (see elision rules)
    const std::int32_t* prow = raw_row + s * g.vtn8;
    for (int t = 0; t < g.q; ++t) {
      if ((elide_x >> t) & 1) continue;
      const std::int64_t xp = xpopc_col != nullptr ? xpopc_col[t] : 0;
      acc += wmult[s] * xmult[t] *
             finalize_partial(sel.kind, prow[t], g.k, xp);
    }
  }
  return acc;
}

}  // namespace

void run_batched_compute(const ApOperand& w, const ApOperand& x,
                         const OpSelection& sel, const BatchedGeometry& g,
                         const Epilogue& epi, Tensor<std::int32_t>* y,
                         bitops::BitPlanes* packed) {
  FeatureSource src;
  src.planes = &x.planes;
  src.encoding = x.encoding;
  src.bits = x.bits();
  run_batched_compute(w, src, sel, g, epi, ConvTail{}, y, packed);
}

void run_batched_compute(const ApOperand& w, const FeatureSource& x,
                         const OpSelection& sel, const BatchedGeometry& g,
                         const Epilogue& epi, const ConvTail& tail,
                         Tensor<std::int32_t>* y, bitops::BitPlanes* packed) {
  // Whole-plane elision (the plane-level sparse fast path): a bit-plane
  // whose payload is entirely zero contributes an exactly-zero term and is
  // dropped from the combine and the Case-III popcount pass. Rules:
  //   - weight plane s, Case I only: term = wmult*xmult*raw with
  //     raw = popc(AND) = 0 (exact for kTwosComplement too — the sign
  //     multiplier scales an exact zero).
  //   - activation plane t, Case I (raw = 0) and Case III (raw = 0 and
  //     x_popc = 0, so 2*raw - x_popc = 0).
  //   - Case II never elides: in ±1 encoding a zero plane encodes all -1
  //     values and its term k - 2*raw = k is nonzero. That also keeps the
  //     window-gather check sound — pad_one is only ever set for Case II,
  //     so in the elidable cases padding stages 0 bits and a zero
  //     feature-map plane implies all-zero patch rows.
  //   - Case III weight planes never elide (term = -wmult*xmult*x_popc).
  std::uint32_t elide_w = 0, elide_x = 0;
  if (g.micro.sparse_staging != microkernel::MicroConfig::Sparse::kOff &&
      sel.kind != EmulationCase::kCaseII) {
    const auto plane_zero = [](const bitops::BitMatrix& pm) {
      for (std::int64_t r = 0; r < pm.rows(); ++r) {
        if (pm.row_popcount(r) != 0) return false;
      }
      return true;
    };
    if (sel.kind == EmulationCase::kCaseI) {
      for (int s = 0; s < g.p; ++s) {
        if (plane_zero(w.planes.plane(s))) elide_w |= 1u << s;
      }
    }
    for (int t = 0; t < g.q; ++t) {
      const bitops::BitMatrix& pm =
          x.window_gather() ? x.fmap->planes[static_cast<std::size_t>(t)]
                            : x.planes->plane(t);
      if (plane_zero(pm)) elide_x |= 1u << t;
    }
  }
  if (g.sparsity != nullptr) {
    g.sparsity->planes.fetch_add(g.p + g.q, std::memory_order_relaxed);
    g.sparsity->planes_elided.fetch_add(
        __builtin_popcount(elide_w) + __builtin_popcount(elide_x),
        std::memory_order_relaxed);
  }
  const bool all_x_elided =
      elide_x != 0 && elide_x == (1u << static_cast<unsigned>(g.q)) - 1;

  // Case III needs popc(X row) per feature plane; flattened q x n, column
  // xpopc[n * q + t] so one output column's planes sit contiguously. For the
  // window-gathered operand the patch row never exists, but its popcount is
  // the sum of the in-frame channel-slab popcounts (§4.2b pads 0 here, so
  // padding taps contribute nothing).
  std::vector<std::int64_t> xpopc;
  if (sel.kind == EmulationCase::kCaseIII) {
    xpopc.resize(static_cast<std::size_t>(g.n * g.q));
    if (x.window_gather()) {
      // Two stages: popc of each spatial position's C-bit slab once per
      // plane, then per column a pure-integer sum over its in-frame taps.
      const layout::ConvGeometry& cg = *x.conv;
      const std::int64_t spatial = cg.batch * cg.in_h * cg.in_w;
      std::vector<std::int32_t> slab_popc(
          static_cast<std::size_t>(spatial * g.q));
      geometry_pool(g).parallel_for(0, spatial, [&](std::int64_t r) {
        for (int t = 0; t < g.q; ++t) {
          if ((elide_x >> t) & 1) continue;  // plane is zero: popc stays 0
          slab_popc[static_cast<std::size_t>(r * g.q + t)] =
              static_cast<std::int32_t>(
                  x.fmap->planes[static_cast<std::size_t>(t)]
                      .row_popcount(r));
        }
      }, /*grain=*/256);
      geometry_pool(g).parallel_for(0, g.n, [&](std::int64_t j) {
        const layout::OutPos pos =
            layout::conv_col_position(cg, j, x.pool_win);
        std::int64_t* out = xpopc.data() + j * g.q;
        for (int t = 0; t < g.q; ++t) out[t] = 0;
        for (int kh = 0; kh < cg.kernel; ++kh) {
          const std::int64_t ih = pos.oy * cg.stride + kh - cg.pad;
          if (ih < 0 || ih >= cg.in_h) continue;
          for (int kw = 0; kw < cg.kernel; ++kw) {
            const std::int64_t iw = pos.ox * cg.stride + kw - cg.pad;
            if (iw < 0 || iw >= cg.in_w) continue;
            const std::int32_t* sp =
                slab_popc.data() +
                ((pos.n * cg.in_h + ih) * cg.in_w + iw) * g.q;
            for (int t = 0; t < g.q; ++t) out[t] += sp[t];
          }
        }
      }, /*grain=*/256);
    } else {
      geometry_pool(g).parallel_for(0, g.n, [&](std::int64_t j) {
        for (int t = 0; t < g.q; ++t) {
          if ((elide_x >> t) & 1) continue;  // resize() zero-filled the slot
          xpopc[static_cast<std::size_t>(j * g.q + t)] =
              x.planes->plane(t).row_popcount(j);
        }
      }, /*grain=*/256);
    }
  }

  // Plane combination multipliers.
  std::vector<std::int64_t> wmult(static_cast<std::size_t>(g.p));
  std::vector<std::int64_t> xmult(static_cast<std::size_t>(g.q));
  for (int s = 0; s < g.p; ++s) {
    wmult[static_cast<std::size_t>(s)] = plane_multiplier(w.encoding, s, g.p);
  }
  for (int t = 0; t < g.q; ++t) {
    xmult[static_cast<std::size_t>(t)] = plane_multiplier(x.encoding, t, g.q);
  }

  const int qbits = epi.has_quant ? epi.quant.bits : 0;

  geometry_pool(g).parallel_for(0, g.blocks, [&](std::int64_t b) {
    // Every temporary below is a pointer bump into the worker's private
    // arena; after the first block on each thread the hot path allocates
    // nothing.
    auto& arena = parallel::ScratchArena::tls();
    arena.reset();

    const std::int64_t bm_idx = b / g.grid_n;
    const std::int64_t bn_idx = b % g.grid_n;
    const std::int64_t m0 = bm_idx * g.om;
    const std::int64_t n0 = bn_idx * g.on;
    const std::int64_t m_end = std::min(m0 + g.om, g.m);
    const std::int64_t n_end = std::min(n0 + g.on, g.n);

    // Virtual rows are plane-interleaved: r = local_m * p + s, so a block
    // always owns every plane partial of its output rows (§4.1b). nullptr
    // marks out-of-range rows; the staging pass turns them into zeros.
    const std::uint64_t** wrows =
        arena.get<const std::uint64_t*>(g.vtm8);
    for (std::int64_t i = 0; i < g.vtm8; ++i) {
      const std::int64_t m = m0 + i / g.p;
      wrows[i] = (i < g.vtm && m < g.m)
                     ? w.planes.plane(static_cast<int>(i % g.p)).row(m)
                     : nullptr;
    }

    // The feature panels come from the staging source: a row-pointer table
    // over contiguous planes, or the im2col-free window gather that
    // assembles each k-strip straight from the packed feature map.
    const std::uint64_t** xrows = nullptr;
    std::optional<layout::WindowGatherSource> gather;
    std::optional<microkernel::RowPointerSource> pointer;
    if (x.window_gather()) {
      gather.emplace(*x.fmap, *x.conv, x.pad_one, x.pool_win, n0, g.vtn8,
                     g.vtn);
    } else {
      xrows = arena.get<const std::uint64_t*>(g.vtn8);
      for (std::int64_t j = 0; j < g.vtn8; ++j) {
        const std::int64_t n = n0 + j / g.q;
        xrows[j] = (j < g.vtn && n < g.n)
                       ? x.planes->plane(static_cast<int>(j % g.q)).row(n)
                       : nullptr;
      }
      pointer.emplace(xrows, g.vtn8);
    }
    const microkernel::PanelSource& bsrc =
        gather ? static_cast<const microkernel::PanelSource&>(*gather)
               : *pointer;

    // Raw popc accumulation over all k-strips ("fragment" storage), then the
    // staged cache-blocked microkernel sweep.
    std::int32_t* raw = arena.get<std::int32_t>(g.vtm8 * g.vtn8);
    std::fill_n(raw, g.vtm8 * g.vtn8, 0);
    microkernel::block_bitgemm(sel.bit_op, wrows, g.vtm8, bsrc, g.row_words,
                               raw, arena, g.micro, g.sparsity);

    // Fused conv tail: correction -> BN/ReLU -> pool -> quantize/store, all
    // inside the block (no full-output pass exists downstream). The walk is
    // m-outer so `raw` is read row-major (the same cache-friendly order as
    // the APMM combine); the pool windows of all the block's columns are
    // reduced per output row.
    if (tail.active()) {
      const layout::ConvGeometry& cg = *tail.g;
      const std::int64_t oh = cg.out_h(), ow = cg.out_w();
      const std::int64_t win = tail.pool.active() ? tail.pool.size : 1;
      const std::int64_t wsz = win * win;
      const bool max_pool = tail.pool.kind == PoolSpec::Kind::kMax;
      APNN_DCHECK(n0 % wsz == 0 && n_end % wsz == 0)
          << "conv blocks must be pool-window aligned (make_geometry "
             "col_align)";
      const std::int64_t cols = n_end - n0;
      const std::int64_t nwin = cols / wsz;
      const bool pre_active = epi.has_bn || epi.has_relu;

      // Per-column index of the Case-II correction entry, hoisted out of
      // the m loop (the mapping depends only on the column).
      const std::int32_t* corr_idx = nullptr;
      if (tail.corr != nullptr) {
        std::int32_t* idx = arena.get<std::int32_t>(cols);
        for (std::int64_t no = 0; no < cols; ++no) {
          const layout::OutPos pos = layout::conv_col_position(
              cg, n0 + no, static_cast<int>(win));
          idx[no] = static_cast<std::int32_t>(pos.oy * ow + pos.ox);
        }
        corr_idx = idx;
      }

      // Quantized output: bits land at columns [m0, m_end) of the packed
      // rows this block's windows map to; spans sharing 64-bit words with
      // horizontally adjacent blocks are merged with one atomic OR per
      // touched word (§4.1b repack). The m-outer walk accumulates all the
      // block's window masks and publishes them once at the end.
      const std::int64_t w_lo = m0 >> 6;
      const std::int64_t w_hi = (m_end - 1) >> 6;
      const std::int64_t nw = w_hi - w_lo + 1;
      std::uint64_t* masks = nullptr;
      if (qbits > 0) {
        masks = arena.get<std::uint64_t>(nwin * qbits * nw);
        std::fill_n(masks, nwin * qbits * nw, 0);
      }

      // One combined output row at a time, in four flat vectorizable
      // passes over an L1-resident row buffer — the host analogue of the
      // in-SHMEM plane reduction followed by the in-register epilogue:
      //   (1) per-(s,t) specialized bit combination (case switch hoisted
      //       out of the element loop),
      //   (2) border correction + BN/ReLU with the channel's scale/bias
      //       held in scalars,
      //   (3) pooling over the win² *contiguous* columns of each window
      //       (the window-major column order makes them adjacent),
      //   (4) quantize + mask build, or the dense NHWC store.
      std::int32_t* yrow = arena.get<std::int32_t>(cols);
      const auto k32 = static_cast<std::int32_t>(g.k);
      for (std::int64_t mo = 0; mo < m_end - m0; ++mo) {
        const std::int64_t m = m0 + mo;
        std::fill_n(yrow, cols, 0);
        for (int s = 0; s < g.p && !all_x_elided; ++s) {
          if ((elide_w >> s) & 1) continue;  // whole-plane term is zero
          const std::int32_t* pr = raw + (mo * g.p + s) * g.vtn8;
          const std::int64_t ws = wmult[static_cast<std::size_t>(s)];
          // 16 is the plane-count ceiling enforced by bitops::decompose /
          // layout::pack_activations.
          APNN_DCHECK(g.q <= 16) << "q=" << g.q;
          std::int32_t mult[16];
          for (int t = 0; t < g.q; ++t) {
            mult[t] = static_cast<std::int32_t>(
                ws * xmult[static_cast<std::size_t>(t)]);
          }
          // All q plane partials of a column sit adjacent in `pr`, so each
          // pass reads contiguously; q = 1 (the BNN case) and q = 2 (the
          // dominant w1a2 stages) get flat unrolled maps.
          switch (sel.kind) {
            case EmulationCase::kCaseI:
              if (g.q == 1) {
                for (std::int64_t no = 0; no < cols; ++no) {
                  yrow[no] += mult[0] * pr[no];
                }
              } else if (g.q == 2) {
                for (std::int64_t no = 0; no < cols; ++no) {
                  yrow[no] +=
                      mult[0] * pr[no * 2] + mult[1] * pr[no * 2 + 1];
                }
              } else {
                for (std::int64_t no = 0; no < cols; ++no) {
                  const std::int32_t* pp = pr + no * g.q;
                  std::int32_t acc = 0;
                  for (int t = 0; t < g.q; ++t) {
                    if ((elide_x >> t) & 1) continue;
                    acc += mult[t] * pp[t];
                  }
                  yrow[no] += acc;
                }
              }
              break;
            case EmulationCase::kCaseII:
              if (g.q == 1) {
                for (std::int64_t no = 0; no < cols; ++no) {
                  yrow[no] += mult[0] * (k32 - 2 * pr[no]);
                }
              } else {
                for (std::int64_t no = 0; no < cols; ++no) {
                  const std::int32_t* pp = pr + no * g.q;
                  std::int32_t acc = 0;
                  for (int t = 0; t < g.q; ++t) {
                    acc += mult[t] * (k32 - 2 * pp[t]);
                  }
                  yrow[no] += acc;
                }
              }
              break;
            case EmulationCase::kCaseIII: {
              const std::int64_t* xp = xpopc.data() + n0 * g.q;
              if (g.q == 1) {
                for (std::int64_t no = 0; no < cols; ++no) {
                  yrow[no] += mult[0] * (2 * pr[no] -
                                         static_cast<std::int32_t>(xp[no]));
                }
              } else if (g.q == 2) {
                for (std::int64_t no = 0; no < cols; ++no) {
                  yrow[no] +=
                      mult[0] * (2 * pr[no * 2] -
                                 static_cast<std::int32_t>(xp[no * 2])) +
                      mult[1] * (2 * pr[no * 2 + 1] -
                                 static_cast<std::int32_t>(xp[no * 2 + 1]));
                }
              } else {
                for (std::int64_t no = 0; no < cols; ++no) {
                  const std::int32_t* pp = pr + no * g.q;
                  const std::int64_t* xpp = xp + no * g.q;
                  std::int32_t acc = 0;
                  for (int t = 0; t < g.q; ++t) {
                    if ((elide_x >> t) & 1) continue;
                    acc += mult[t] *
                           (2 * pp[t] - static_cast<std::int32_t>(xpp[t]));
                  }
                  yrow[no] += acc;
                }
              }
              break;
            }
          }
        }
        if (corr_idx != nullptr) {
          const std::int32_t* mcorr = tail.corr + m * oh * ow;
          for (std::int64_t no = 0; no < cols; ++no) {
            yrow[no] -= mcorr[corr_idx[no]];
          }
        }
        if (pre_active) {
          // Identical float arithmetic to Epilogue::apply with the per-
          // channel parameters hoisted (x*1+0 is exact, so the hoisted
          // form also covers the BN-less ReLU).
          const float scale =
              epi.has_bn ? epi.bn.scale[static_cast<std::size_t>(m)] : 1.0f;
          const float bias =
              epi.has_bn ? epi.bn.bias[static_cast<std::size_t>(m)] : 0.0f;
          if (epi.has_relu) {
            for (std::int64_t no = 0; no < cols; ++no) {
              const float v = static_cast<float>(yrow[no]) * scale + bias;
              yrow[no] = static_cast<std::int32_t>(v < 0.0f ? 0.0f : v);
            }
          } else {
            for (std::int64_t no = 0; no < cols; ++no) {
              yrow[no] = static_cast<std::int32_t>(
                  static_cast<float>(yrow[no]) * scale + bias);
            }
          }
        }
        if (wsz > 1) {
          if (max_pool) {
            for (std::int64_t wloc = 0; wloc < nwin; ++wloc) {
              const std::int32_t* src = yrow + wloc * wsz;
              std::int32_t agg = src[0];
              for (std::int64_t e = 1; e < wsz; ++e) {
                agg = std::max(agg, src[e]);
              }
              yrow[wloc] = agg;
            }
          } else {
            for (std::int64_t wloc = 0; wloc < nwin; ++wloc) {
              const std::int32_t* src = yrow + wloc * wsz;
              std::int64_t agg = 0;
              for (std::int64_t e = 0; e < wsz; ++e) agg += src[e];
              // The device epilogue truncates the average (see PoolSpec).
              yrow[wloc] = static_cast<std::int32_t>(agg / wsz);
            }
          }
        }
        if (qbits > 0) {
          const std::int64_t wi = (m >> 6) - w_lo;
          const std::uint64_t bit = std::uint64_t{1} << (m & 63);
          for (std::int64_t wloc = 0; wloc < nwin; ++wloc) {
            const std::int32_t code = quant::quantize_value(
                static_cast<float>(yrow[wloc]), epi.quant);
            for (int plane = 0; plane < qbits; ++plane) {
              if ((code >> plane) & 1) {
                masks[(wloc * qbits + plane) * nw + wi] |= bit;
              }
            }
          }
        } else {
          const std::int64_t widx0 = n0 / wsz;
          std::int32_t* dst = y->data() + widx0 * cg.out_c + m;
          for (std::int64_t wloc = 0; wloc < nwin; ++wloc) {
            dst[wloc * cg.out_c] = yrow[wloc];
          }
        }
      }
      if (qbits > 0) {
        for (std::int64_t wloc = 0; wloc < nwin; ++wloc) {
          const std::int64_t widx = (n0 + wloc * wsz) / wsz;
          for (int plane = 0; plane < qbits; ++plane) {
            std::uint64_t* row =
                packed->planes[static_cast<std::size_t>(plane)].row(widx) +
                w_lo;
            for (std::int64_t wwi = 0; wwi < nw; ++wwi) {
              const std::uint64_t mask =
                  masks[(wloc * qbits + plane) * nw + wwi];
              if (mask != 0) {
                std::atomic_ref<std::uint64_t>(row[wwi]).fetch_or(
                    mask, std::memory_order_relaxed);
              }
            }
          }
        }
      }
      return;
    }

    // Bit combination + epilogue for the block's output elements.
    if (!epi.has_quant) {
      const bool fast =
          g.combine_fast && g.p == 1 && g.q == 1 && epi.identity();
      const std::int64_t cols = n_end - n0;
      for (std::int64_t mo = 0; mo < m_end - m0; ++mo) {
        const std::int64_t m = m0 + mo;
        const std::int32_t* raw_row = raw + (mo * g.p) * g.vtn8;
        std::int32_t* yrow = y->data() + m * g.n + n0;
        if (fast) {
          if ((elide_w | elide_x) != 0) {
            // p = q = 1 and the single plane pair has an elided side: every
            // term is exactly zero (elision never applies under Case II).
            std::fill_n(yrow, cols, 0);
            continue;
          }
          // Single-plane identity combine: a branch-free elementwise map the
          // compiler vectorizes (the p*q loop nest and the float epilogue
          // round trip cost more than the bit kernel for 1-bit operands).
          const auto mult = static_cast<std::int32_t>(wmult[0] * xmult[0]);
          const auto k32 = static_cast<std::int32_t>(g.k);
          switch (sel.kind) {
            case EmulationCase::kCaseI:
              for (std::int64_t no = 0; no < cols; ++no) {
                yrow[no] = mult * raw_row[no];
              }
              break;
            case EmulationCase::kCaseII:
              for (std::int64_t no = 0; no < cols; ++no) {
                yrow[no] = mult * (k32 - 2 * raw_row[no]);
              }
              break;
            case EmulationCase::kCaseIII:
              for (std::int64_t no = 0; no < cols; ++no) {
                const auto xp =
                    static_cast<std::int32_t>(xpopc[(n0 + no) * g.q]);
                yrow[no] = mult * (2 * raw_row[no] - xp);
              }
              break;
          }
          continue;
        }
        for (std::int64_t no = 0; no < cols; ++no) {
          const std::int64_t n = n0 + no;
          const std::int64_t* xp_col =
              xpopc.empty() ? nullptr : xpopc.data() + n * g.q;
          const std::int64_t acc =
              combine_element(g, sel, raw_row + no * g.q, wmult.data(),
                              xmult.data(), xp_col, elide_w, elide_x);
          yrow[no] = epi.apply(static_cast<std::int32_t>(acc), m);
        }
      }
      return;
    }

    // Quantized epilogue: packed output is transposed (N x M) for the next
    // layer, so this block's bits land in packed rows [n0, n_end) at bit
    // columns [m0, m_end). When om is not a multiple of 64 those bit spans
    // share 64-bit words with the horizontally adjacent blocks — the seed's
    // unsynchronized BitMatrix::set() raced there. Instead each block builds
    // its span masks in scratch and publishes them with one atomic OR per
    // touched word.
    const std::int64_t w_lo = m0 >> 6;
    const std::int64_t w_hi = (m_end - 1) >> 6;
    const std::int64_t nw = w_hi - w_lo + 1;
    std::uint64_t* masks = arena.get<std::uint64_t>(nw * qbits);
    for (std::int64_t no = 0; no < n_end - n0; ++no) {
      const std::int64_t n = n0 + no;
      const std::int64_t* xp_col =
          xpopc.empty() ? nullptr : xpopc.data() + n * g.q;
      std::fill_n(masks, nw * qbits, 0);
      for (std::int64_t mo = 0; mo < m_end - m0; ++mo) {
        const std::int64_t m = m0 + mo;
        const std::int64_t acc =
            combine_element(g, sel, raw + (mo * g.p) * g.vtn8 + no * g.q,
                            wmult.data(), xmult.data(), xp_col, elide_w,
                            elide_x);
        const std::int32_t out = epi.apply(static_cast<std::int32_t>(acc), m);
        const std::int64_t wi = (m >> 6) - w_lo;
        const std::uint64_t bit = std::uint64_t{1} << (m & 63);
        for (int plane = 0; plane < qbits; ++plane) {
          if ((out >> plane) & 1) masks[plane * nw + wi] |= bit;
        }
      }
      for (int plane = 0; plane < qbits; ++plane) {
        std::uint64_t* row =
            packed->planes[static_cast<std::size_t>(plane)].row(n) + w_lo;
        for (std::int64_t wi = 0; wi < nw; ++wi) {
          const std::uint64_t mask = masks[plane * nw + wi];
          if (mask != 0) {
            std::atomic_ref<std::uint64_t>(row[wi]).fetch_or(
                mask, std::memory_order_relaxed);
          }
        }
      }
    }
  });
}

}  // namespace apnn::core::internal

#include "src/core/apmm_internal.hpp"

#include <algorithm>

namespace apnn::core::internal {

BatchedGeometry make_geometry(const ApOperand& w, const ApOperand& x,
                              const TileConfig& tile) {
  return make_geometry(w.rows(), x.rows(), w.cols(), w.bits(), x.bits(),
                       tile);
}

BatchedGeometry make_geometry(std::int64_t m, std::int64_t n, std::int64_t k,
                              int p, int q, const TileConfig& tile) {
  BatchedGeometry g;
  g.m = m;
  g.n = n;
  g.k = k;
  g.p = p;
  g.q = q;
  g.tile = tile;
  // Blocks own whole output elements (all p*q plane partials), so the block
  // tile is expressed in output space and expanded by the plane counts.
  g.om = std::max<std::int64_t>(1, tile.bm / g.p);
  g.on = std::max<std::int64_t>(1, tile.bn / g.q);
  g.vtm = g.om * g.p;
  g.vtn = g.on * g.q;
  g.vtm8 = round_up(g.vtm, 8);
  g.vtn8 = round_up(g.vtn, 8);
  g.grid_m = ceil_div(g.m, g.om);
  g.grid_n = ceil_div(g.n, g.on);
  g.blocks = g.grid_m * g.grid_n;
  g.row_words = bitops::padded_words(k);
  g.ktiles = g.row_words / bitops::kWordsPerTile;
  return g;
}

tcsim::KernelProfile batched_profile(const BatchedGeometry& g,
                                     const OpSelection& sel,
                                     const ApmmOptions& opts,
                                     const Epilogue& epi,
                                     const std::string& name,
                                     std::int64_t store_scale,
                                     std::int64_t extra_alu_per_out) {
  tcsim::KernelProfile prof;
  prof.name = name;
  prof.family = "apnn";
  prof.grid_blocks = g.blocks;
  prof.threads_per_block = g.tile.warps_per_block() * 32;
  prof.shmem_per_block = g.tile.shmem_bytes();
  prof.ci = compute_intensity(g.tile);
  auto& c = prof.counters;
  c.kernel_launches = 1;

  const std::int64_t tile_bits = (g.vtm + g.vtn) * g.tile.bk;
  const int wr = g.tile.warp_rows, wc = g.tile.warp_cols;
  const std::int64_t wm_t = ceil_div(g.vtm, wr), wn_t = ceil_div(g.vtn, wc);
  const std::int64_t warp_bits = static_cast<std::int64_t>(wr) * wc *
                                 (wm_t + wn_t) * g.tile.bk;

  if (opts.double_caching) {
    // Warps collaboratively stage tiles in SHMEM, then fetch their subtiles.
    c.global_load_bytes += g.blocks * g.ktiles * tile_bits / 8;
    c.shared_store_bytes += g.blocks * g.ktiles * tile_bits / 8;
    c.shared_load_bytes += g.blocks * g.ktiles * warp_bits / 8;
  } else {
    // Each warp pulls its own tiles straight from global memory.
    c.global_load_bytes += g.blocks * g.ktiles * warp_bits / 8;
  }

  if (!opts.fragment_caching) {
    // Partial accumulators spill to SHMEM and reload every k-tile instead of
    // staying in register fragments.
    c.shared_store_bytes += g.blocks * g.ktiles * g.vtm8 * g.vtn8 * 4;
    c.shared_load_bytes += g.blocks * g.ktiles * g.vtm8 * g.vtn8 * 4;
  }

  c.bmma_b1 += g.blocks * g.ktiles * (g.vtm8 / 8) * (g.vtn8 / 8);

  if (sel.kind == EmulationCase::kCaseIII) {
    // J·X correction: one popc per loaded feature word.
    c.alu_combine_ops += g.q * g.n * g.row_words;
  }

  const std::int64_t out_per_block =
      std::max<std::int64_t>(1, g.om * g.on / store_scale);
  if (opts.semantic_aware) {
    // In-SHMEM reduction of the p*q partials of each output element.
    c.shared_store_bytes += g.blocks * g.vtm * g.vtn * 4;
    c.shared_load_bytes += g.blocks * g.vtm * g.vtn * 4;
    c.alu_combine_ops += g.blocks * g.vtm * g.vtn * 2;
    c.alu_epilogue_ops +=
        g.blocks * out_per_block *
        (epi.alu_ops_per_element() + extra_alu_per_out);
    if (epi.has_quant) {
      const int qo = epi.quant.bits;
      // Plane split (shift+and per bit) plus one ballot per 32 lanes/plane.
      c.alu_decompose_ops += g.blocks * out_per_block * qo;
      c.alu_decompose_ops += g.blocks * ceil_div(out_per_block, 32) * qo;
      c.global_store_bytes += g.blocks * ceil_div(out_per_block, 32) * 4 * qo;
    } else {
      c.global_store_bytes += g.blocks * out_per_block * 4;
    }
  } else {
    // Partials leave the kernel unreduced; a second kernel combines them.
    c.global_store_bytes += g.blocks * g.vtm * g.vtn * 4;
  }
  return prof;
}

tcsim::KernelProfile combine_kernel_profile(const BatchedGeometry& g,
                                            const Epilogue& epi) {
  tcsim::KernelProfile prof;
  prof.name = "bit-combine";
  prof.family = "apnn";
  prof.grid_blocks = ceil_div(g.m * g.n, 4096);
  prof.threads_per_block = 256;
  prof.ci = 0;
  auto& c = prof.counters;
  c.kernel_launches = 1;
  c.global_load_bytes += g.p * g.q * g.m * g.n * 4;
  c.alu_combine_ops += g.p * g.q * g.m * g.n * 2;
  c.alu_epilogue_ops += g.m * g.n * epi.alu_ops_per_element();
  if (epi.has_quant) {
    const int qo = epi.quant.bits;
    c.alu_decompose_ops += g.m * g.n * qo + ceil_div(g.m * g.n, 32) * qo;
    c.global_store_bytes += ceil_div(g.m * g.n, 32) * 4 * qo;
  } else {
    c.global_store_bytes += g.m * g.n * 4;
  }
  return prof;
}

void run_batched_compute(const ApOperand& w, const ApOperand& x,
                         const OpSelection& sel, const BatchedGeometry& g,
                         const Epilogue& epi, Tensor<std::int32_t>* y,
                         bitops::BitPlanes* packed) {
  // Case III needs popc(X row) per feature plane.
  std::vector<std::vector<std::int64_t>> xpopc;
  if (sel.kind == EmulationCase::kCaseIII) {
    xpopc.resize(static_cast<std::size_t>(g.q));
    for (int t = 0; t < g.q; ++t) {
      auto& v = xpopc[static_cast<std::size_t>(t)];
      v.resize(static_cast<std::size_t>(g.n));
      for (std::int64_t j = 0; j < g.n; ++j) {
        v[static_cast<std::size_t>(j)] = x.planes.plane(t).row_popcount(j);
      }
    }
  }

  // Plane combination multipliers.
  std::vector<std::int64_t> wmult(static_cast<std::size_t>(g.p));
  std::vector<std::int64_t> xmult(static_cast<std::size_t>(g.q));
  for (int s = 0; s < g.p; ++s) {
    wmult[static_cast<std::size_t>(s)] = plane_multiplier(w.encoding, s, g.p);
  }
  for (int t = 0; t < g.q; ++t) {
    xmult[static_cast<std::size_t>(t)] = plane_multiplier(x.encoding, t, g.q);
  }

  const std::vector<std::uint64_t> zero_row(
      static_cast<std::size_t>(g.row_words), 0);

  parallel_for(0, g.blocks, [&](std::int64_t b) {
    const std::int64_t bm_idx = b / g.grid_n;
    const std::int64_t bn_idx = b % g.grid_n;
    const std::int64_t m0 = bm_idx * g.om;
    const std::int64_t n0 = bn_idx * g.on;

    // Virtual rows are plane-interleaved: r = local_m * p + s, so a block
    // always owns every plane partial of its output rows (§4.1b).
    std::vector<const std::uint64_t*> wrows(static_cast<std::size_t>(g.vtm8),
                                            zero_row.data());
    std::vector<const std::uint64_t*> xrows(static_cast<std::size_t>(g.vtn8),
                                            zero_row.data());
    for (std::int64_t i = 0; i < g.vtm; ++i) {
      const std::int64_t m = m0 + i / g.p;
      const int s = static_cast<int>(i % g.p);
      if (m < g.m) {
        wrows[static_cast<std::size_t>(i)] = w.planes.plane(s).row(m);
      }
    }
    for (std::int64_t j = 0; j < g.vtn; ++j) {
      const std::int64_t n = n0 + j / g.q;
      const int t = static_cast<int>(j % g.q);
      if (n < g.n) {
        xrows[static_cast<std::size_t>(j)] = x.planes.plane(t).row(n);
      }
    }

    // Raw popc accumulation over all k-slabs ("fragment" storage).
    std::vector<std::int32_t> raw(static_cast<std::size_t>(g.vtm8 * g.vtn8),
                                  0);
    for (std::int64_t ii = 0; ii < g.vtm8; ii += 8) {
      for (std::int64_t jj = 0; jj < g.vtn8; jj += 8) {
        std::int32_t acc[64] = {0};
        for (std::int64_t kt = 0; kt < g.ktiles; ++kt) {
          tcsim::bmma_8x8x128_rows(
              sel.bit_op, &wrows[static_cast<std::size_t>(ii)],
              &xrows[static_cast<std::size_t>(jj)],
              kt * bitops::kWordsPerTile, acc);
        }
        for (int di = 0; di < 8; ++di) {
          std::int32_t* dst = raw.data() + (ii + di) * g.vtn8 + jj;
          const std::int32_t* src = acc + di * 8;
          for (int dj = 0; dj < 8; ++dj) dst[dj] = src[dj];
        }
      }
    }

    // Bit combination + epilogue for the block's output elements.
    for (std::int64_t mo = 0; mo < g.om; ++mo) {
      const std::int64_t m = m0 + mo;
      if (m >= g.m) break;
      for (std::int64_t no = 0; no < g.on; ++no) {
        const std::int64_t n = n0 + no;
        if (n >= g.n) break;
        std::int64_t acc = 0;
        for (int s = 0; s < g.p; ++s) {
          for (int t = 0; t < g.q; ++t) {
            const std::int32_t rawv =
                raw[static_cast<std::size_t>((mo * g.p + s) * g.vtn8 +
                                             (no * g.q + t))];
            const std::int64_t xp =
                sel.kind == EmulationCase::kCaseIII
                    ? xpopc[static_cast<std::size_t>(t)]
                           [static_cast<std::size_t>(n)]
                    : 0;
            acc += wmult[static_cast<std::size_t>(s)] *
                   xmult[static_cast<std::size_t>(t)] *
                   finalize_partial(sel.kind, rawv, g.k, xp);
          }
        }
        const std::int32_t out = epi.apply(static_cast<std::int32_t>(acc), m);
        if (epi.has_quant) {
          // Packed output is transposed (N x M) for the next layer.
          for (int bit = 0; bit < epi.quant.bits; ++bit) {
            if ((out >> bit) & 1) {
              packed->planes[static_cast<std::size_t>(bit)].set(n, m, true);
            }
          }
        } else {
          (*y)(m, n) = out;
        }
      }
    }
  });
}

}  // namespace apnn::core::internal

// Plan-time empirical autotuning (measure, don't model).
//
// The §4.3.2 heuristic ranks tile configurations by modeled occupancy
// (TLP/CI); on the host microkernel that model misses what actually decides
// wall time — SIMD lane utilization of the row-block kernel, staging
// amortization vs cache footprint of the k-strip depth, the virtual-row
// padding of short-M stages. Following the measure-don't-model approach of
// tensor-core characterization studies (PAPERS.md: Markidis et al.), the
// Autotuner benchmarks a pruned candidate set per ExecutionPlan stage on the
// session's thread pool, using the stage's real packed weight operand and a
// synthetic feature operand of the exact geometry, and bakes the winner into
// the plan. perf_model::ranked_tiles is the candidate pruner and the
// heuristic pick is always candidate #0, so a tuned plan degrades to exactly
// the heuristic plan when nothing measures faster.
//
// Winners persist in a TuningCache keyed by a canonical stage signature and
// guarded by a hardware fingerprint (schema version, compiled SIMD level,
// thread-pool width): repeated compiles, CLI runs, and server cold starts
// hit the cache instead of re-measuring, and a cache recorded on different
// hardware (or an incompatible schema) invalidates wholesale.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"

namespace apnn::core {

/// One fully resolved kernel configuration for a stage: the paper-level
/// tile plus the host-microkernel knobs. Every config is bit-exact; only
/// speed differs.
struct TunedKernel {
  TileConfig tile;
  microkernel::MicroConfig micro;
  bool combine_fast = true;

  double measured_ms = 0.0;  ///< best-of-reps wall time (0 when unmeasured)
  bool measured = false;     ///< false: heuristic fallback, never timed

  /// Geometry equality (ignores measurement metadata) — what the
  /// determinism tests compare across compiles.
  bool same_config(const TunedKernel& o) const {
    return tile.bm == o.tile.bm && tile.bn == o.tile.bn &&
           tile.bk == o.tile.bk && micro == o.micro &&
           combine_fast == o.combine_fast;
  }
};

/// Canonical signature of a tunable stage — the TuningCache key. Everything
/// that changes the measured cost shape is in here; anything that does not
/// (operand *values*, device spec of the simulated GPU) is deliberately out.
struct StageKey {
  std::string kind;  ///< "mm" (linear) or "conv"
  std::int64_t m = 0, n = 0, k = 0;  ///< lowered GEMM dims
  int p = 1, q = 1;
  EmulationCase ecase = EmulationCase::kCaseI;
  bool has_bn = false, has_relu = false;
  int qbits = 0;     ///< quantizing-epilogue output bits (0 = dense)
  int pool_win = 1;  ///< fused pool window (1 = none)
  int pool_kind = 0; ///< PoolSpec::Kind as int (max/avg reduce differently)
  /// Sequence bucket of a dynamic-shape plan family's attention GEMM
  /// (0 = shape-static stage). N already encodes batch * bucket; carrying
  /// the bucket separately keeps each family member's winner distinct even
  /// when batch * bucket collides across buckets.
  std::int64_t seq = 0;
  /// Conv-only window-gather shape (zero for "mm").
  std::int64_t in_c = 0;
  int kernel = 0, stride = 0, pad = 0;

  /// Canonical single-token form (no whitespace) used as the cache key and
  /// in the serialized file format.
  std::string canonical() const;
};

StageKey make_mm_key(const ApOperand& w, std::int64_t n, int q_bits,
                     Encoding x_enc, const Epilogue& epi,
                     std::int64_t seq = 0);
StageKey make_conv_key(const ApOperand& w, const layout::ConvGeometry& g,
                       int q_bits, Encoding x_enc, const Epilogue& epi,
                       const PoolSpec& pool);

/// Persistent, serializable store of measured winners. Versioned: the
/// serialized text carries a fingerprint (schema version + compiled SIMD
/// level + thread-pool width); deserializing a text whose fingerprint does
/// not match the running binary drops every entry (stale-cache
/// invalidation) rather than replaying measurements from a different
/// machine shape.
///
/// Thread-safe: lookup/insert/size/serialize/deserialize take an internal
/// mutex, so one cache may back any number of concurrently tuning sessions
/// (the replicated InferenceServer shares one cache across its replicas —
/// the first replica's measurements are every later replica's cache hits).
/// entries() is the exception: it hands out a reference for offline
/// inspection (CLI `inspect`, tests) and must not race concurrent inserts.
class TuningCache {
 public:
  /// `pool_threads` is the logical width (workers + participating caller) of
  /// the pool the cached measurements run on; 0 means the process-global
  /// pool. A server slicing hardware into per-replica pools passes the slice
  /// width so `t<threads>` reflects what its sessions actually execute with
  /// — measurements from a different width invalidate wholesale on load.
  explicit TuningCache(unsigned pool_threads = 0);

  /// What measurements depend on: "v<schema>:<simd>:t<threads>", where
  /// <threads> is the logical pool width (0 = the global pool's width).
  static std::string hardware_fingerprint(unsigned pool_threads = 0);

  bool lookup(const StageKey& key, TunedKernel* out) const;
  void insert(const StageKey& key, const TunedKernel& cfg);
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  /// Inspection-only view; requires no concurrent writers (see class doc).
  const std::map<std::string, TunedKernel>& entries() const {
    return entries_;
  }
  /// Fingerprint this cache carries (the running binary's, unless
  /// deserialize(any_fingerprint=true) loaded a foreign one for inspection).
  /// By value: deserialize() may reassign it concurrently.
  std::string fingerprint() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fingerprint_;
  }

  std::string serialize() const;
  /// Replaces the contents from serialized text. Returns false (and leaves
  /// the cache empty) on malformed input or a fingerprint mismatch; pass
  /// `any_fingerprint` to load a foreign cache for inspection only.
  bool deserialize(const std::string& text, bool any_fingerprint = false);

  /// File convenience wrappers (false on I/O failure or stale content).
  /// A corrupt or truncated file makes load_file return false with the
  /// cache left empty — callers degrade to cold tuning, never crash.
  bool load_file(const std::string& path, bool any_fingerprint = false);
  /// Crash-safe: writes `path + ".tmp"` then atomically renames over
  /// `path`, so a failure mid-save never leaves a truncated cache behind.
  bool save_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TunedKernel> entries_;
  std::string fingerprint_;
  unsigned pool_threads_ = 0;  ///< width this cache is keyed to (0 = global)
};

struct AutotuneOptions {
  /// Tile candidates kept from perf_model::ranked_tiles (the heuristic pick
  /// always survives pruning).
  std::size_t max_tile_candidates = 3;
  /// Timing repetitions per candidate (best-of, after one warm-up run).
  int reps = 2;
  /// Also measure microkernel-knob variants (k-strip depth, staging,
  /// combine fast path, sparse staging) of the heuristic tile.
  bool explore_micro = true;
  /// Share of 64-bit words zeroed (in word-aligned runs) in the synthetic
  /// feature operand before measurement, so sparse-vs-dense candidates are
  /// compared on occupancy representative of ReLU-fed packed activations
  /// rather than the dense-only worst case. 0 disables.
  double synth_zero_frac = 0.25;
};

/// Stateless apart from counters and reusable measurement scratch; one
/// instance per InferenceSession (or per CLI tune run).
class Autotuner {
 public:
  /// `cache` may be null (measurements are then never reused). `pool` is the
  /// pool measurement runs execute on (nullptr = global) — a session tuning
  /// on a private slice measures at the slice width it will serve with.
  Autotuner(const tcsim::DeviceSpec& dev, TuningCache* cache,
            const AutotuneOptions& opts = {}, ThreadPool* pool = nullptr);

  /// One measured candidate (introspection for the explorer/CLI).
  struct Candidate {
    TunedKernel cfg;  ///< measured_ms/measured filled in
  };

  /// Tunes a linear stage: `w` is the stage's real packed weight operand;
  /// the N x K feature operand is synthesized at the exact geometry
  /// (q_bits planes, encoding x_enc, random payload bits). `seq` is the
  /// sequence bucket for attention GEMMs of a dynamic-shape plan family
  /// (0 for shape-static stages); it only widens the cache key.
  TunedKernel tune_apmm(const ApOperand& w, std::int64_t n, int q_bits,
                        Encoding x_enc, const Epilogue& epi,
                        std::int64_t seq = 0,
                        std::vector<Candidate>* trace = nullptr);

  /// Tunes a conv stage end to end (window-gather staging, fused tail
  /// included) against a synthetic packed activation map of the stage's
  /// exact NPHWC geometry.
  TunedKernel tune_apconv(const ApOperand& w, const layout::ConvGeometry& g,
                          int q_bits, Encoding x_enc, const Epilogue& epi,
                          const PoolSpec& pool,
                          std::vector<Candidate>* trace = nullptr);

  /// Candidate kernel executions performed so far (warm-ups included).
  /// Zero after a compile whose every stage hit the TuningCache. Atomic so
  /// the serving tier may poll these counters while a replica tunes lazily.
  std::int64_t measurement_runs() const { return measurement_runs_.load(); }
  std::int64_t cache_hits() const { return cache_hits_.load(); }

  const tcsim::DeviceSpec& device() const { return dev_; }

 private:
  /// The pruned candidate list: ranked tiles x (default micro), plus the
  /// micro variants of the heuristic tile. `fast_eligible` gates the
  /// combine-fast-off candidate (it only exists for p=q=1 identity).
  std::vector<TunedKernel> candidates(std::int64_t m, std::int64_t n,
                                      std::int64_t k, int p, int q,
                                      bool fast_eligible) const;

  template <typename RunFn>
  TunedKernel measure(const StageKey& key, std::vector<TunedKernel> cands,
                      RunFn&& run, std::vector<Candidate>* trace);

  tcsim::DeviceSpec dev_;
  TuningCache* cache_;
  AutotuneOptions opts_;
  ThreadPool* pool_ = nullptr;
  std::atomic<std::int64_t> measurement_runs_{0};
  std::atomic<std::int64_t> cache_hits_{0};

  // Reusable measurement sinks (grow once, then steady-state).
  Tensor<std::int32_t> scratch_y_;
  bitops::BitPlanes scratch_planes_;
  layout::PackedActivations scratch_packed_;
};

}  // namespace apnn::core

// Arbitrary-Precision Matrix Multiplication (APMM, paper §4.1).
//
// Computes Y[m][n] = sum_k W[m][k] * X[n][k] for a p-bit weight operand
// (M x K) and a q-bit feature operand (N x K) by emulating the product with
// 1-bit tensor-core tiles. The production kernel implements the paper's
// layer-level designs:
//
//  * Batch-based double caching (§4.1a): the p weight planes and q feature
//    planes are *virtually* batched into one pM x K by qN x K BMMA — one
//    kernel launch, one tiling — with collaborative shared-memory tile
//    loads and register-fragment output accumulation.
//  * Memory-efficient bit combination (§4.1b): virtual rows/columns are
//    plane-interleaved so every block owns all p*q partials of its output
//    elements and reduces them in shared memory (semantic-aware workload
//    allocation); quantized outputs are repacked to bit planes in registers
//    via ballots before the single global store.
//  * Data-adaptive operator selection (§3.2) and the tuned tiling of §4.3.
//
// Setting the knobs off reproduces the naive strategies the paper compares
// against (independent BMMA kernels + a separate combination kernel).
#pragma once

#include <cstdint>

#include "src/core/ap_bit.hpp"
#include "src/core/fusion.hpp"
#include "src/core/microkernel.hpp"
#include "src/core/perf_model.hpp"
#include "src/tcsim/cost_model.hpp"
#include "src/tcsim/device_spec.hpp"
#include "src/tcsim/kernel.hpp"

namespace apnn {
class ThreadPool;
}  // namespace apnn

namespace apnn::core {

/// Full emulation computes results and counters; profile-only walks the same
/// launch structure but skips the math (used for large latency sweeps — the
/// counters are identical by construction).
enum class ExecMode { kFull, kProfileOnly };

struct ApmmOptions {
  /// Tile selection: when autotune is true (default) the §4.3.2 heuristic
  /// picks bm/bn; otherwise `tile` is used as given.
  bool autotune = true;
  TileConfig tile;
  double tlp_threshold = 64.0;

  /// Host-microkernel execution knobs (k-strip depth, staging variant) and
  /// the p=q=1 identity combine fast path. Results are bit-identical for
  /// every setting; core::Autotuner measures candidates per stage and bakes
  /// the fastest into the session plan.
  microkernel::MicroConfig micro;
  bool combine_fast = true;

  /// §4.1a batch strategy: one virtually batched BMMA vs p*q independent
  /// BMMA launches (the "existing BMMA kernels" baseline).
  bool batch_planes = true;

  /// §4.1a double caching: collaborative SHMEM tile loads (vs each warp
  /// loading its own tiles from global memory).
  bool double_caching = true;

  /// §4.1a fragment caching: output partials stay in register fragments
  /// across the K loop (vs spilling to shared memory every k-tile).
  bool fragment_caching = true;

  /// §4.1b semantic-aware workload allocation: in-block (SHMEM) reduction of
  /// plane partials vs writing p*q partial matrices to global memory and
  /// combining in a second kernel.
  bool semantic_aware = true;

  ExecMode mode = ExecMode::kFull;

  /// Caller-provided output storage (e.g. an InferenceSession slab slot):
  /// when set, the corresponding result is written here — the buffer is
  /// reshaped in place, reusing its capacity, so steady-state reuse performs
  /// zero heap allocations — and the matching ApmmResult field stays empty.
  /// y_out receives the M x N int32 output (identity/non-quantizing
  /// epilogue); packed_out receives the N x M planes of a quantizing one.
  Tensor<std::int32_t>* y_out = nullptr;
  bitops::BitPlanes* packed_out = nullptr;

  /// Build launch records in the result (true) or leave the profile empty —
  /// the steady-state serving path skips the per-call record churn.
  bool collect_profile = true;

  /// Pool the block loops run on; nullptr = ThreadPool::global(). Non-owning
  /// — must outlive the call. InferenceServer replicas pass their private
  /// slice so N replicas don't oversubscribe the global pool N×.
  ThreadPool* pool = nullptr;

  /// Occupancy/elision counters filled during the run (observability only;
  /// thread-safe, non-owning). nullptr = don't collect.
  microkernel::SparsityStats* sparsity_stats = nullptr;
};

struct ApmmResult {
  /// Final 32-bit output, M x N. Empty in profile-only mode.
  Tensor<std::int32_t> y;

  /// When the epilogue quantizes: the packed activation planes, transposed
  /// to N x M so they feed the next layer directly (encoding kUnsigned01).
  /// Empty otherwise.
  bitops::BitPlanes packed;

  /// Launch records (1 kernel for the fused path; p*q + 1 for the naive
  /// path) for the cost model.
  tcsim::SequenceProfile profile;

  /// The tile the kernel actually ran with (after autotuning).
  TileConfig tile;
};

/// Runs APMM. `w` is M x K (p-bit), `x` is N x K (q-bit); `epi` is the fused
/// elementwise epilogue (pass {} for the raw 32-bit GEMM).
ApmmResult apmm(const ApOperand& w, const ApOperand& x,
                const tcsim::DeviceSpec& dev, const ApmmOptions& opts = {},
                const Epilogue& epi = {});

/// Launch records only, from dimensions (no operand data needed) — what the
/// NN profiling engine uses for large-model latency sweeps. Identical to the
/// profile apmm() returns for the same problem.
tcsim::SequenceProfile apmm_profile(std::int64_t m, std::int64_t n,
                                    std::int64_t k, int p, int q,
                                    const EncodingConfig& enc,
                                    const tcsim::DeviceSpec& dev,
                                    const ApmmOptions& opts = {},
                                    const Epilogue& epi = {});

/// Profile of the standalone bit-decomposition pass that converts a dense
/// `elem_bytes`-byte activation matrix (rows x cols) into `bits` planes —
/// the front of the pipeline when inputs are not already packed (Fig. 11).
tcsim::KernelProfile decompose_profile(std::int64_t rows, std::int64_t cols,
                                       int bits, double elem_bytes);

}  // namespace apnn::core

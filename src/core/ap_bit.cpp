#include "src/core/ap_bit.hpp"

#include <vector>

#include "src/bitops/bit_matrix.hpp"

namespace apnn::core {

ApOperand make_operand(const Tensor<std::int32_t>& logical, Encoding enc,
                       int bits) {
  APNN_CHECK(logical.rank() == 2) << "operand must be a matrix";
  if (enc == Encoding::kSignedPM1) {
    APNN_CHECK(bits == 1) << "kSignedPM1 requires bits == 1";
  }
  const std::int64_t rows = logical.dim(0), cols = logical.dim(1);
  std::vector<std::int32_t> codes(static_cast<std::size_t>(rows * cols));
  for (std::int64_t i = 0; i < rows * cols; ++i) {
    codes[static_cast<std::size_t>(i)] = encode_value(enc, bits, logical[i]);
  }
  ApOperand op;
  op.planes = bitops::decompose(codes.data(), rows, cols, bits);
  op.encoding = enc;
  return op;
}

Tensor<std::int32_t> operand_to_logical(const ApOperand& op) {
  const std::vector<std::int32_t> codes = bitops::recompose(op.planes);
  Tensor<std::int32_t> out({op.rows(), op.cols()});
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<std::int32_t>(
        decode_value(op.encoding, op.bits(), codes[static_cast<std::size_t>(i)]));
  }
  return out;
}

Tensor<std::int32_t> ap_gemm_reference(const ApOperand& w,
                                       const ApOperand& x) {
  APNN_CHECK(w.cols() == x.cols())
      << "K mismatch: " << w.cols() << " vs " << x.cols();
  const OpSelection sel = select_operator({w.encoding, x.encoding});
  const std::int64_t m = w.rows(), n = x.rows(), k = w.cols();
  const std::int64_t words = w.planes.plane(0).row_words();

  Tensor<std::int32_t> y({m, n});
  for (int s = 0; s < w.bits(); ++s) {
    const std::int64_t wm = plane_multiplier(w.encoding, s, w.bits());
    const bitops::BitMatrix& wp = w.planes.plane(s);
    for (int t = 0; t < x.bits(); ++t) {
      const std::int64_t xm = plane_multiplier(x.encoding, t, x.bits());
      const bitops::BitMatrix& xp = x.planes.plane(t);
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          const std::int64_t raw =
              sel.bit_op == tcsim::BitOp::kXor
                  ? bitops::dot_xor_popc(wp.row(i), xp.row(j), words)
                  : bitops::dot_and_popc(wp.row(i), xp.row(j), words);
          const std::int64_t x_popc =
              sel.kind == EmulationCase::kCaseIII
                  ? bitops::popc_words(xp.row(j), words)
                  : 0;
          y(i, j) += static_cast<std::int32_t>(
              wm * xm * finalize_partial(sel.kind, raw, k, x_popc));
        }
      }
    }
  }
  return y;
}

Tensor<std::int32_t> ap_bit_template_tile(const ApOperand& w,
                                          const ApOperand& x) {
  APNN_CHECK(w.rows() == 8 && x.rows() == 8 && w.cols() == 128 &&
             x.cols() == 128)
      << "template tile requires 8x128 operands";
  const OpSelection sel = select_operator({w.encoding, x.encoding});

  Tensor<std::int32_t> y({8, 8});
  // (b) batched tensor-core computation: one bmma per (s, t) plane pair.
  for (int s = 0; s < w.bits(); ++s) {
    const std::int64_t wm = plane_multiplier(w.encoding, s, w.bits());
    const bitops::BitMatrix& wp = w.planes.plane(s);
    for (int t = 0; t < x.bits(); ++t) {
      const std::int64_t xm = plane_multiplier(x.encoding, t, x.bits());
      const bitops::BitMatrix& xp = x.planes.plane(t);
      std::int32_t raw[64] = {0};
      tcsim::bmma_8x8x128(sel.bit_op, wp.row(0), wp.row_words(), xp.row(0),
                          xp.row_words(), raw);
      // (c) bit combination with the finalize transform of the selected case.
      for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
          const std::int64_t x_popc =
              sel.kind == EmulationCase::kCaseIII
                  ? bitops::popc_words(xp.row(j), xp.row_words())
                  : 0;
          y(i, j) += static_cast<std::int32_t>(
              wm * xm *
              finalize_partial(sel.kind, raw[i * 8 + j], 128, x_popc));
        }
      }
    }
  }
  return y;
}

}  // namespace apnn::core

// Performance analysis and auto-tuning of the APNN-TC tiling knobs (§4.3).
//
// Six knobs exist (bm, bn, bk, wm, wn, wk); following the paper we fix
// bk = 128, 8 warps per block with the block workload split evenly
// (wm = bm/4, wn = bn/2, wk = bk — adapted when bm or bn is too small for
// the 4x2 warp grid), and tune bm, bn in {16, 32, 64, 128} with the
// TLP-priority-queue heuristic of §4.3.2 (threshold T = 64).
#pragma once

#include <cstdint>
#include <vector>

#include "src/tcsim/device_spec.hpp"

namespace apnn::core {

/// Block/warp tiling of an APNN-TC kernel.
struct TileConfig {
  int bm = 64, bn = 64, bk = 128;
  int warp_rows = 4, warp_cols = 2;  ///< 8 warps in a warp_rows x warp_cols grid

  int warps_per_block() const { return warp_rows * warp_cols; }
  int wm() const { return bm / warp_rows; }
  int wn() const { return bn / warp_cols; }
  int wk() const { return bk; }

  /// Shared memory per block: double-buffered W/X tiles + the int32 output
  /// staging used by the in-SHMEM bit combination.
  std::int64_t shmem_bytes() const {
    const std::int64_t tile_bits =
        static_cast<std::int64_t>(bm + bn) * bk;
    return 2 * tile_bits / 8 + static_cast<std::int64_t>(bm) * bn * 4;
  }
};

/// Thread-level parallelism (Eq. 3): the number of blocks the virtually
/// batched pM x qN output grid spawns.
double tlp(std::int64_t m, std::int64_t n, int p, int q, const TileConfig& t);

/// Compute intensity (Eq. 4): CI = 2*bm*bn / (bm + bn).
double compute_intensity(const TileConfig& t);

struct TuneResult {
  TileConfig tile;
  double tlp = 0;
  double ci = 0;
};

/// §4.3.2 heuristic: enumerate bm, bn in {16,32,64,128}; order by TLP
/// descending; take the head; while candidates keep TLP >= T, prefer the one
/// with the best CI. Configs whose shared-memory footprint exceeds the
/// device are discarded.
TuneResult autotune_tile(std::int64_t m, std::int64_t n, std::int64_t k,
                         int p, int q, const tcsim::DeviceSpec& dev,
                         double tlp_threshold = 64.0);

/// Picks the 8-warp partition for a block tile: prefers the paper's 4x2,
/// falling back to shapes that keep wm and wn multiples of 8 (the bmma
/// fragment size). Asserts bm*bn is large enough for 8 warps of 8x8 tiles
/// unless fewer warps are required (then warps idle, matching hardware).
void assign_warp_grid(TileConfig& t);

/// Clamps bm to the stage's virtual row count (m * p, rounded up to 16) so
/// short-M stages stop staging padded zero A rows — the plan-time
/// refinement InferenceSession applies on top of the heuristic, shared with
/// the autotuner's candidate generation.
TileConfig clamp_tile_rows(TileConfig t, std::int64_t m, int p);

/// Candidate pruner for the empirical autotuner: the full bm x bn grid,
/// clamped and deduplicated, ordered by the §4.3.2 priority (TLP
/// descending, CI, then size — the heuristic's own pick is always front).
/// `max_tiles` caps the list (0 = no cap). perf_model thus proposes;
/// core::Autotuner measures and disposes.
std::vector<TileConfig> ranked_tiles(std::int64_t m, std::int64_t n,
                                     std::int64_t k, int p, int q,
                                     const tcsim::DeviceSpec& dev,
                                     std::size_t max_tiles = 0,
                                     double tlp_threshold = 64.0);

}  // namespace apnn::core

#include "src/core/op_select.hpp"

namespace apnn::core {

const char* emulation_case_name(EmulationCase kind) {
  switch (kind) {
    case EmulationCase::kCaseI: return "I";
    case EmulationCase::kCaseII: return "II";
    case EmulationCase::kCaseIII: return "III";
  }
  return "?";
}

OpSelection select_operator(const EncodingConfig& enc) {
  OpSelection sel;
  const bool w_signed_pm1 = enc.w == Encoding::kSignedPM1;
  const bool x_signed_pm1 = enc.x == Encoding::kSignedPM1;
  if (w_signed_pm1 && x_signed_pm1) {
    sel.kind = EmulationCase::kCaseII;
    sel.bit_op = tcsim::BitOp::kXor;
  } else if (w_signed_pm1 && !x_signed_pm1) {
    sel.kind = EmulationCase::kCaseIII;
    sel.bit_op = tcsim::BitOp::kAnd;
  } else if (!w_signed_pm1 && x_signed_pm1) {
    // Symmetric to Case III; swap roles is not supported by the kernels (the
    // paper's networks always put the ±1 encoding on the weights).
    APNN_CHECK(false) << "±1-encoded activations with multi-bit weights are "
                         "not supported; put the ±1 encoding on W";
  } else {
    sel.kind = EmulationCase::kCaseI;
    sel.bit_op = tcsim::BitOp::kAnd;
  }
  return sel;
}

ValueRange encoding_range(Encoding enc, int bits) {
  switch (enc) {
    case Encoding::kUnsigned01:
      return {0, (std::int64_t{1} << bits) - 1};
    case Encoding::kSignedPM1:
      return {-1, 1};
    case Encoding::kTwosComplement:
      return {-(std::int64_t{1} << (bits - 1)),
              (std::int64_t{1} << (bits - 1)) - 1};
  }
  return {0, 0};
}

std::int32_t encode_value(Encoding enc, int bits, std::int64_t value) {
  const ValueRange r = encoding_range(enc, bits);
  APNN_CHECK(value >= r.lo && value <= r.hi)
      << "value " << value << " outside encoding range [" << r.lo << ", "
      << r.hi << "]";
  switch (enc) {
    case Encoding::kUnsigned01:
      return static_cast<std::int32_t>(value);
    case Encoding::kSignedPM1:
      APNN_CHECK(value == -1 || value == 1)
          << "±1 encoding cannot represent " << value;
      return value == 1 ? 1 : 0;
    case Encoding::kTwosComplement:
      return static_cast<std::int32_t>(value & ((std::int64_t{1} << bits) - 1));
  }
  return 0;
}

std::int64_t decode_value(Encoding enc, int bits, std::int32_t code) {
  switch (enc) {
    case Encoding::kUnsigned01:
      return code;
    case Encoding::kSignedPM1:
      return code ? 1 : -1;
    case Encoding::kTwosComplement: {
      const std::int64_t sign_bit = std::int64_t{1} << (bits - 1);
      std::int64_t v = code;
      if (v & sign_bit) v -= std::int64_t{1} << bits;
      return v;
    }
  }
  return 0;
}

}  // namespace apnn::core

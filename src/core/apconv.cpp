#include "src/core/apconv.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/apmm_internal.hpp"
#include "src/parallel/scratch.hpp"

namespace apnn::core {

using internal::BatchedGeometry;
using internal::ceil_div;

namespace {

std::string kernel_name(int p, int q) {
  return "apconv-w" + std::to_string(p) + "a" + std::to_string(q);
}

ApmmOptions as_apmm_options(const ApconvOptions& o) {
  ApmmOptions a;
  a.autotune = false;  // tile already resolved by apconv
  a.micro = o.micro;
  a.combine_fast = o.combine_fast;
  a.batch_planes = o.batch_planes;
  a.double_caching = o.double_caching;
  a.fragment_caching = o.fragment_caching;
  a.semantic_aware = o.semantic_aware;
  a.mode = o.mode;
  a.pool = o.pool;
  a.sparsity_stats = o.sparsity_stats;
  return a;
}

/// Separate pooling kernel of the unfused path: one global round trip.
tcsim::KernelProfile pool_kernel_profile(std::int64_t channels,
                                         std::int64_t spatial,
                                         const PoolSpec& pool) {
  tcsim::KernelProfile prof;
  prof.name = pool.kind == PoolSpec::Kind::kMax ? "maxpool" : "avgpool";
  prof.family = "apnn";
  prof.grid_blocks = ceil_div(channels * spatial, 4096);
  prof.threads_per_block = 256;
  auto& c = prof.counters;
  c.kernel_launches = 1;
  c.global_load_bytes += channels * spatial * 4;
  c.global_store_bytes +=
      channels * spatial / (pool.size * pool.size) * 4;
  c.alu_epilogue_ops += channels * spatial;
  return prof;
}

/// Separate elementwise epilogue kernel of the unfused path (BN/ReLU/quant
/// + bit repacking).
tcsim::KernelProfile epilogue_kernel_profile(std::int64_t elems,
                                             const Epilogue& epi) {
  tcsim::KernelProfile prof;
  prof.name = "epilogue";
  prof.family = "apnn";
  prof.grid_blocks = ceil_div(elems, 4096);
  prof.threads_per_block = 256;
  auto& c = prof.counters;
  c.kernel_launches = 1;
  c.global_load_bytes += elems * 4;
  c.alu_epilogue_ops += elems * epi.alu_ops_per_element();
  if (epi.has_quant) {
    const int qo = epi.quant.bits;
    c.alu_decompose_ops += elems * qo + ceil_div(elems, 32) * qo;
    c.global_store_bytes += ceil_div(elems, 32) * 4 * qo;
  } else {
    c.global_store_bytes += elems * 4;
  }
  return prof;
}

/// Precomputes the §4.2b Case-II amendment: out-of-frame taps were padded
/// with bit 1 (+1); the fused block epilogue subtracts their contribution so
/// the result matches zero-pad semantics. The correction for one output
/// position is
///   2 * popc(W_row & pad_mask) - popc(pad_mask)
/// shared across the batch; the table is indexed [m * oh*ow + oy*ow + ox]
/// and is zero at interior positions (most of it, so the build parallelizes
/// over positions and skips the pad-free ones).
std::vector<std::int32_t> build_case2_correction(
    const ApOperand& w, const layout::ConvGeometry& g, ThreadPool& tp) {
  const bitops::BitMatrix& w0 = w.planes.plane(0);
  const std::int64_t row_words = w0.row_words();
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::vector<std::int32_t> corr(
      static_cast<std::size_t>(g.out_c * oh * ow), 0);
  tp.parallel_for(0, oh * ow, [&](std::int64_t pos) {
    const std::int64_t oy = pos / ow, ox = pos % ow;
    // Mask scratch comes from the worker's arena (pointer bump, no heap
    // after the first position on each thread).
    auto& arena = parallel::ScratchArena::tls();
    arena.reset();
    std::uint64_t* mask = arena.get<std::uint64_t>(row_words);
    std::fill_n(mask, row_words, 0);
    std::int64_t npad = 0;
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        const std::int64_t ih = oy * g.stride + kh - g.pad;
        const std::int64_t iw = ox * g.stride + kw - g.pad;
        if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) {
          const std::int64_t bit =
              (static_cast<std::int64_t>(kh) * g.kernel + kw) * g.in_c;
          for (std::int64_t c = 0; c < g.in_c; ++c) {
            mask[static_cast<std::size_t>((bit + c) / 64)] |=
                1ULL << ((bit + c) % 64);
          }
          npad += g.in_c;
        }
      }
    }
    if (npad == 0) return;
    for (std::int64_t m = 0; m < g.out_c; ++m) {
      const std::int64_t ones = bitops::dot_and_popc(w0.row(m), mask,
                                                     row_words);
      corr[static_cast<std::size_t>(m * oh * ow + pos)] =
          static_cast<std::int32_t>(2 * ones - npad);
    }
  }, /*grain=*/ow);
  return corr;
}

}  // namespace

tcsim::SequenceProfile apconv_profile(const layout::ConvGeometry& g, int p,
                                      int q, const EncodingConfig& enc,
                                      const tcsim::DeviceSpec& dev,
                                      const ApconvOptions& opts,
                                      const Epilogue& epi,
                                      const PoolSpec& pool) {
  const OpSelection sel = select_operator(enc);
  TileConfig tile = opts.tile;
  if (opts.autotune) {
    tile = autotune_tile(g.gemm_m(), g.gemm_n(), g.gemm_k(), p, q, dev,
                         opts.tlp_threshold)
               .tile;
  } else {
    assign_warp_grid(tile);
  }
  const BatchedGeometry geom = internal::make_geometry(
      g.gemm_m(), g.gemm_n(), g.gemm_k(), p, q, tile);
  const std::string name = kernel_name(p, q);
  const ApmmOptions aopts = as_apmm_options(opts);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t pooled_spatial =
      pool.active() ? g.gemm_n() / (pool.size * pool.size) : g.gemm_n();

  tcsim::SequenceProfile seq;
  const Epilogue fused_epi = opts.fuse_epilogue ? epi : Epilogue{};
  const std::int64_t store_scale =
      (opts.fuse_epilogue && pool.active())
          ? static_cast<std::int64_t>(pool.size) * pool.size
          : 1;
  const std::int64_t extra_alu =
      (opts.fuse_epilogue && pool.active())
          ? static_cast<std::int64_t>(pool.size) * pool.size
          : 0;
  tcsim::KernelProfile main_prof = internal::batched_profile(
      geom, sel, aopts, fused_epi, name, store_scale, extra_alu);
  // Narrow-channel coalescing penalty (§4.2a): the channel-major layout
  // yields C-bit feature slabs; when C is far below the 32-bit transaction
  // granularity (e.g. the 3-channel input layer) most of every transaction
  // is wasted. The GEMM-side W loads are dense and unaffected.
  if (g.in_c < 32) {
    const double factor = std::min(8.0, 32.0 / static_cast<double>(g.in_c));
    const double feat_frac = static_cast<double>(geom.vtn) /
                             static_cast<double>(geom.vtm + geom.vtn);
    const auto extra = static_cast<std::int64_t>(
        static_cast<double>(main_prof.counters.global_load_bytes) *
        feat_frac * (factor - 1.0));
    main_prof.counters.global_load_bytes += extra;
  }
  if (sel.kind == EmulationCase::kCaseII) {
    // Border amendment: one masked popc per (border position, out channel).
    const std::int64_t border = 2 * (oh + ow);  // ~perimeter positions
    main_prof.counters.alu_combine_ops += border * g.out_c * geom.row_words;
  }
  seq.add(std::move(main_prof));
  if (!opts.semantic_aware) {
    seq.add(internal::combine_kernel_profile(geom, fused_epi));
  }
  if (!opts.fuse_epilogue) {
    if (pool.active()) {
      seq.add(pool_kernel_profile(g.out_c, g.gemm_n(), pool));
    }
    if (!epi.identity()) {
      seq.add(epilogue_kernel_profile(g.out_c * pooled_spatial, epi));
    }
  }
  return seq;
}

ApOperand make_conv_weights(const Tensor<std::int32_t>& ohwi, Encoding enc,
                            int bits) {
  APNN_CHECK(ohwi.rank() == 4) << "conv weights must be {Cout, KH, KW, Cin}";
  const Tensor<std::int32_t> flat = ohwi.reshaped(
      {ohwi.dim(0), ohwi.dim(1) * ohwi.dim(2) * ohwi.dim(3)});
  return make_operand(flat, enc, bits);
}

Tensor<std::int32_t> conv2d_reference(const Tensor<std::int32_t>& x_nhwc,
                                      const Tensor<std::int32_t>& w_ohwi,
                                      const layout::ConvGeometry& g) {
  APNN_CHECK(x_nhwc.rank() == 4 && w_ohwi.rank() == 4);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor<std::int32_t> y({g.batch, oh, ow, g.out_c});
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        for (std::int64_t m = 0; m < g.out_c; ++m) {
          std::int64_t acc = 0;
          for (int kh = 0; kh < g.kernel; ++kh) {
            for (int kw = 0; kw < g.kernel; ++kw) {
              const std::int64_t ih = oy * g.stride + kh - g.pad;
              const std::int64_t iw = ox * g.stride + kw - g.pad;
              if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) continue;
              for (std::int64_t c = 0; c < g.in_c; ++c) {
                acc += static_cast<std::int64_t>(x_nhwc(n, ih, iw, c)) *
                       w_ohwi(m, kh, kw, c);
              }
            }
          }
          y(n, oy, ox, m) = static_cast<std::int32_t>(acc);
        }
      }
    }
  }
  return y;
}

ApconvResult apconv(const ApOperand& w, const layout::PackedActivations& x,
                    Encoding x_enc, const layout::ConvGeometry& g,
                    const tcsim::DeviceSpec& dev, const ApconvOptions& opts,
                    const Epilogue& epi, const PoolSpec& pool) {
  APNN_CHECK(w.rows() == g.out_c) << "Cout mismatch";
  APNN_CHECK(w.cols() == g.gemm_k()) << "weight K mismatch";
  APNN_CHECK(x.n == g.batch && x.h == g.in_h && x.w == g.in_w &&
             x.c == g.in_c)
      << "activation shape mismatch";
  APNN_CHECK(opts.batch_planes)
      << "the unbatched plane strategy is exposed through apmm(); APConv "
         "always uses the virtually batched kernel";
  const OpSelection sel = select_operator({w.encoding, x_enc});
  if (sel.kind == EmulationCase::kCaseII) {
    APNN_CHECK(w.bits() == 1 && x.bits == 1)
        << "Case II requires 1-bit operands";
  }
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t pooled_h = oh, pooled_w = ow;
  if (pool.active()) {
    APNN_CHECK(oh % pool.size == 0 && ow % pool.size == 0)
        << "pooling window must tile the output (" << oh << "x" << ow << ")";
    pooled_h = oh / pool.size;
    pooled_w = ow / pool.size;
  }

  ApconvResult res;
  TileConfig tile = opts.tile;
  if (opts.autotune) {
    tile = autotune_tile(g.gemm_m(), g.gemm_n(), g.gemm_k(), w.bits(), x.bits,
                         dev, opts.tlp_threshold)
               .tile;
  } else {
    assign_warp_grid(tile);
  }
  res.tile = tile;
  const BatchedGeometry geom = internal::make_geometry(
      g.gemm_m(), g.gemm_n(), g.gemm_k(), w.bits(), x.bits, tile);

  // Input-aware padding (§4.2b): ±1 features pad bit 1 (+1) and get the
  // counter amendment; 0/1 features (Cases I and III) pad bit 0.
  const bool pad_one = sel.kind == EmulationCase::kCaseII;

  // --- Launch records -------------------------------------------------
  if (opts.collect_profile) {
    ApconvOptions resolved = opts;
    resolved.autotune = false;
    resolved.tile = tile;
    res.profile = apconv_profile(g, w.bits(), x.bits,
                                 {w.encoding, x_enc}, dev, resolved, epi,
                                 pool);
  }

  // --- Functional execution -------------------------------------------
  if (opts.mode == ExecMode::kFull) {
    // Im2col-free fused path: no patch matrix is ever materialized — the
    // microkernel's staging layer window-gathers each B-panel k-strip
    // straight from the packed feature-map planes, and the whole
    // BN -> ReLU -> pool -> quantize tail runs inside each block's epilogue.
    // Blocks are aligned to whole pooling windows (window-major column
    // order) so a window never straddles blocks; this functional geometry
    // does not alter the launch records above, which model the nominal
    // tiling.
    const std::int64_t win = pool.active() ? pool.size : 1;
    internal::BatchedGeometry fgeom = internal::make_geometry(
        g.gemm_m(), g.gemm_n(), g.gemm_k(), w.bits(), x.bits, tile,
        win * win);
    fgeom.micro = opts.micro;
    fgeom.combine_fast = opts.combine_fast;
    fgeom.pool = opts.pool;
    fgeom.sparsity = opts.sparsity_stats;

    std::vector<std::int32_t> corr;
    if (sel.kind == EmulationCase::kCaseII && g.pad > 0) {
      corr = build_case2_correction(
          w, g, opts.pool != nullptr ? *opts.pool : ThreadPool::global());
    }

    internal::FeatureSource src;
    src.fmap = &x;
    src.conv = &g;
    src.pad_one = pad_one;
    src.pool_win = static_cast<int>(win);
    src.encoding = x_enc;
    src.bits = x.bits;

    internal::ConvTail tail;
    tail.g = &g;
    tail.pool = pool;
    tail.corr = corr.empty() ? nullptr : corr.data();

    const std::int64_t pooled_cols = g.batch * pooled_h * pooled_w;
    if (epi.has_quant) {
      layout::PackedActivations* dst =
          opts.packed_out != nullptr ? opts.packed_out : &res.packed;
      dst->reset_shape(g.batch, pooled_h, pooled_w, geom.m, epi.quant.bits);
      // run_batched_compute's packed sink is a BitPlanes; lend it the
      // destination's plane storage (vector moves, no data copies).
      bitops::BitPlanes planes;
      planes.rows = pooled_cols;
      planes.cols = geom.m;
      planes.bits = epi.quant.bits;
      planes.planes = std::move(dst->planes);
      internal::run_batched_compute(w, src, sel, fgeom, epi, tail, nullptr,
                                    &planes);
      dst->planes = std::move(planes.planes);
    } else {
      Tensor<std::int32_t>* dst =
          opts.y_out != nullptr ? opts.y_out : &res.y;
      dst->reset_shape({g.batch, pooled_h, pooled_w, geom.m});
      internal::run_batched_compute(w, src, sel, fgeom, epi, tail, dst,
                                    nullptr);
    }
  }
  return res;
}

}  // namespace apnn::core

#include "src/core/apconv.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/apmm_internal.hpp"

namespace apnn::core {

using internal::BatchedGeometry;
using internal::ceil_div;

namespace {

std::string kernel_name(int p, int q) {
  return "apconv-w" + std::to_string(p) + "a" + std::to_string(q);
}

ApmmOptions as_apmm_options(const ApconvOptions& o) {
  ApmmOptions a;
  a.autotune = false;  // tile already resolved by apconv
  a.batch_planes = o.batch_planes;
  a.double_caching = o.double_caching;
  a.fragment_caching = o.fragment_caching;
  a.semantic_aware = o.semantic_aware;
  a.mode = o.mode;
  return a;
}

/// Separate pooling kernel of the unfused path: one global round trip.
tcsim::KernelProfile pool_kernel_profile(std::int64_t channels,
                                         std::int64_t spatial,
                                         const PoolSpec& pool) {
  tcsim::KernelProfile prof;
  prof.name = pool.kind == PoolSpec::Kind::kMax ? "maxpool" : "avgpool";
  prof.family = "apnn";
  prof.grid_blocks = ceil_div(channels * spatial, 4096);
  prof.threads_per_block = 256;
  auto& c = prof.counters;
  c.kernel_launches = 1;
  c.global_load_bytes += channels * spatial * 4;
  c.global_store_bytes +=
      channels * spatial / (pool.size * pool.size) * 4;
  c.alu_epilogue_ops += channels * spatial;
  return prof;
}

/// Separate elementwise epilogue kernel of the unfused path (BN/ReLU/quant
/// + bit repacking).
tcsim::KernelProfile epilogue_kernel_profile(std::int64_t elems,
                                             const Epilogue& epi) {
  tcsim::KernelProfile prof;
  prof.name = "epilogue";
  prof.family = "apnn";
  prof.grid_blocks = ceil_div(elems, 4096);
  prof.threads_per_block = 256;
  auto& c = prof.counters;
  c.kernel_launches = 1;
  c.global_load_bytes += elems * 4;
  c.alu_epilogue_ops += elems * epi.alu_ops_per_element();
  if (epi.has_quant) {
    const int qo = epi.quant.bits;
    c.alu_decompose_ops += elems * qo + ceil_div(elems, 32) * qo;
    c.global_store_bytes += ceil_div(elems, 32) * 4 * qo;
  } else {
    c.global_store_bytes += elems * 4;
  }
  return prof;
}

/// Applies the §4.2b Case-II amendment: out-of-frame taps were padded with
/// bit 1 (+1); subtract their contribution so the result matches zero-pad
/// semantics. The correction for one output position is
///   2 * popc(W_row & pad_mask) - popc(pad_mask)
/// computed once per (oy, ox) border position (shared across the batch).
void apply_case2_padding_correction(const ApOperand& w,
                                    const layout::ConvGeometry& g,
                                    Tensor<std::int32_t>* y) {
  const bitops::BitMatrix& w0 = w.planes.plane(0);
  const std::int64_t row_words = w0.row_words();
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::vector<std::uint64_t> mask(static_cast<std::size_t>(row_words));
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      std::fill(mask.begin(), mask.end(), 0);
      std::int64_t npad = 0;
      for (int kh = 0; kh < g.kernel; ++kh) {
        for (int kw = 0; kw < g.kernel; ++kw) {
          const std::int64_t ih = oy * g.stride + kh - g.pad;
          const std::int64_t iw = ox * g.stride + kw - g.pad;
          if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) {
            const std::int64_t bit =
                (static_cast<std::int64_t>(kh) * g.kernel + kw) * g.in_c;
            for (std::int64_t c = 0; c < g.in_c; ++c) {
              mask[static_cast<std::size_t>((bit + c) / 64)] |=
                  1ULL << ((bit + c) % 64);
            }
            npad += g.in_c;
          }
        }
      }
      if (npad == 0) continue;
      for (std::int64_t m = 0; m < g.out_c; ++m) {
        const std::int64_t ones =
            bitops::dot_and_popc(w0.row(m), mask.data(), row_words);
        const std::int32_t corr = static_cast<std::int32_t>(2 * ones - npad);
        for (std::int64_t n = 0; n < g.batch; ++n) {
          (*y)(m, (n * oh + oy) * ow + ox) -= corr;
        }
      }
    }
  }
}

}  // namespace

tcsim::SequenceProfile apconv_profile(const layout::ConvGeometry& g, int p,
                                      int q, const EncodingConfig& enc,
                                      const tcsim::DeviceSpec& dev,
                                      const ApconvOptions& opts,
                                      const Epilogue& epi,
                                      const PoolSpec& pool) {
  const OpSelection sel = select_operator(enc);
  TileConfig tile = opts.tile;
  if (opts.autotune) {
    tile = autotune_tile(g.gemm_m(), g.gemm_n(), g.gemm_k(), p, q, dev,
                         opts.tlp_threshold)
               .tile;
  } else {
    assign_warp_grid(tile);
  }
  const BatchedGeometry geom = internal::make_geometry(
      g.gemm_m(), g.gemm_n(), g.gemm_k(), p, q, tile);
  const std::string name = kernel_name(p, q);
  const ApmmOptions aopts = as_apmm_options(opts);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t pooled_spatial =
      pool.active() ? g.gemm_n() / (pool.size * pool.size) : g.gemm_n();

  tcsim::SequenceProfile seq;
  const Epilogue fused_epi = opts.fuse_epilogue ? epi : Epilogue{};
  const std::int64_t store_scale =
      (opts.fuse_epilogue && pool.active())
          ? static_cast<std::int64_t>(pool.size) * pool.size
          : 1;
  const std::int64_t extra_alu =
      (opts.fuse_epilogue && pool.active())
          ? static_cast<std::int64_t>(pool.size) * pool.size
          : 0;
  tcsim::KernelProfile main_prof = internal::batched_profile(
      geom, sel, aopts, fused_epi, name, store_scale, extra_alu);
  // Narrow-channel coalescing penalty (§4.2a): the channel-major layout
  // yields C-bit feature slabs; when C is far below the 32-bit transaction
  // granularity (e.g. the 3-channel input layer) most of every transaction
  // is wasted. The GEMM-side W loads are dense and unaffected.
  if (g.in_c < 32) {
    const double factor = std::min(8.0, 32.0 / static_cast<double>(g.in_c));
    const double feat_frac = static_cast<double>(geom.vtn) /
                             static_cast<double>(geom.vtm + geom.vtn);
    const auto extra = static_cast<std::int64_t>(
        static_cast<double>(main_prof.counters.global_load_bytes) *
        feat_frac * (factor - 1.0));
    main_prof.counters.global_load_bytes += extra;
  }
  if (sel.kind == EmulationCase::kCaseII) {
    // Border amendment: one masked popc per (border position, out channel).
    const std::int64_t border = 2 * (oh + ow);  // ~perimeter positions
    main_prof.counters.alu_combine_ops += border * g.out_c * geom.row_words;
  }
  seq.add(std::move(main_prof));
  if (!opts.semantic_aware) {
    seq.add(internal::combine_kernel_profile(geom, fused_epi));
  }
  if (!opts.fuse_epilogue) {
    if (pool.active()) {
      seq.add(pool_kernel_profile(g.out_c, g.gemm_n(), pool));
    }
    if (!epi.identity()) {
      seq.add(epilogue_kernel_profile(g.out_c * pooled_spatial, epi));
    }
  }
  return seq;
}

ApOperand make_conv_weights(const Tensor<std::int32_t>& ohwi, Encoding enc,
                            int bits) {
  APNN_CHECK(ohwi.rank() == 4) << "conv weights must be {Cout, KH, KW, Cin}";
  const Tensor<std::int32_t> flat = ohwi.reshaped(
      {ohwi.dim(0), ohwi.dim(1) * ohwi.dim(2) * ohwi.dim(3)});
  return make_operand(flat, enc, bits);
}

Tensor<std::int32_t> conv2d_reference(const Tensor<std::int32_t>& x_nhwc,
                                      const Tensor<std::int32_t>& w_ohwi,
                                      const layout::ConvGeometry& g) {
  APNN_CHECK(x_nhwc.rank() == 4 && w_ohwi.rank() == 4);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor<std::int32_t> y({g.batch, oh, ow, g.out_c});
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        for (std::int64_t m = 0; m < g.out_c; ++m) {
          std::int64_t acc = 0;
          for (int kh = 0; kh < g.kernel; ++kh) {
            for (int kw = 0; kw < g.kernel; ++kw) {
              const std::int64_t ih = oy * g.stride + kh - g.pad;
              const std::int64_t iw = ox * g.stride + kw - g.pad;
              if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) continue;
              for (std::int64_t c = 0; c < g.in_c; ++c) {
                acc += static_cast<std::int64_t>(x_nhwc(n, ih, iw, c)) *
                       w_ohwi(m, kh, kw, c);
              }
            }
          }
          y(n, oy, ox, m) = static_cast<std::int32_t>(acc);
        }
      }
    }
  }
  return y;
}

ApconvResult apconv(const ApOperand& w, const layout::PackedActivations& x,
                    Encoding x_enc, const layout::ConvGeometry& g,
                    const tcsim::DeviceSpec& dev, const ApconvOptions& opts,
                    const Epilogue& epi, const PoolSpec& pool) {
  APNN_CHECK(w.rows() == g.out_c) << "Cout mismatch";
  APNN_CHECK(w.cols() == g.gemm_k()) << "weight K mismatch";
  APNN_CHECK(x.n == g.batch && x.h == g.in_h && x.w == g.in_w &&
             x.c == g.in_c)
      << "activation shape mismatch";
  APNN_CHECK(opts.batch_planes)
      << "the unbatched plane strategy is exposed through apmm(); APConv "
         "always uses the virtually batched kernel";
  const OpSelection sel = select_operator({w.encoding, x_enc});
  if (sel.kind == EmulationCase::kCaseII) {
    APNN_CHECK(w.bits() == 1 && x.bits == 1)
        << "Case II requires 1-bit operands";
  }
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t pooled_h = oh, pooled_w = ow;
  if (pool.active()) {
    APNN_CHECK(oh % pool.size == 0 && ow % pool.size == 0)
        << "pooling window must tile the output (" << oh << "x" << ow << ")";
    pooled_h = oh / pool.size;
    pooled_w = ow / pool.size;
  }

  ApconvResult res;
  TileConfig tile = opts.tile;
  if (opts.autotune) {
    tile = autotune_tile(g.gemm_m(), g.gemm_n(), g.gemm_k(), w.bits(), x.bits,
                         dev, opts.tlp_threshold)
               .tile;
  } else {
    assign_warp_grid(tile);
  }
  res.tile = tile;
  const BatchedGeometry geom = internal::make_geometry(
      g.gemm_m(), g.gemm_n(), g.gemm_k(), w.bits(), x.bits, tile);

  // Input-aware padding (§4.2b): ±1 features pad bit 1 (+1) and get the
  // counter amendment; 0/1 features (Cases I and III) pad bit 0.
  const bool pad_one = sel.kind == EmulationCase::kCaseII;

  // --- Launch records -------------------------------------------------
  {
    ApconvOptions resolved = opts;
    resolved.autotune = false;
    resolved.tile = tile;
    res.profile = apconv_profile(g, w.bits(), x.bits,
                                 {w.encoding, x_enc}, dev, resolved, epi,
                                 pool);
  }

  // --- Functional execution -------------------------------------------
  if (opts.mode == ExecMode::kFull) {
    // Channel-major lowering: one patch matrix per activation plane.
    ApOperand xop;
    xop.encoding = x_enc;
    xop.planes.rows = g.gemm_n();
    xop.planes.cols = g.gemm_k();
    xop.planes.bits = x.bits;
    for (int t = 0; t < x.bits; ++t) {
      xop.planes.planes.push_back(im2col_bits(
          x.planes[static_cast<std::size_t>(t)], g, pad_one));
    }

    Tensor<std::int32_t> y32({geom.m, geom.n});
    bitops::BitPlanes unused;
    internal::run_batched_compute(w, xop, sel, geom, Epilogue{}, &y32,
                                  &unused);
    if (sel.kind == EmulationCase::kCaseII) {
      apply_case2_padding_correction(w, g, &y32);
    }

    // BN / ReLU before pooling.
    if (epi.has_bn || epi.has_relu) {
      Epilogue pre = epi;
      pre.has_quant = false;
      for (std::int64_t m = 0; m < geom.m; ++m) {
        for (std::int64_t col = 0; col < geom.n; ++col) {
          y32(m, col) = pre.apply(y32(m, col), m);
        }
      }
    }

    // Pooling.
    Tensor<std::int32_t> pooled({geom.m, g.batch * pooled_h * pooled_w});
    if (pool.active()) {
      const std::int64_t win = pool.size;
      for (std::int64_t m = 0; m < geom.m; ++m) {
        for (std::int64_t n = 0; n < g.batch; ++n) {
          for (std::int64_t py = 0; py < pooled_h; ++py) {
            for (std::int64_t px = 0; px < pooled_w; ++px) {
              std::int64_t agg =
                  pool.kind == PoolSpec::Kind::kMax ? INT64_MIN : 0;
              for (std::int64_t dy = 0; dy < win; ++dy) {
                for (std::int64_t dx = 0; dx < win; ++dx) {
                  const std::int64_t col =
                      (n * oh + py * win + dy) * ow + (px * win + dx);
                  const std::int32_t v = y32(m, col);
                  if (pool.kind == PoolSpec::Kind::kMax) {
                    agg = std::max<std::int64_t>(agg, v);
                  } else {
                    agg += v;
                  }
                }
              }
              if (pool.kind == PoolSpec::Kind::kAvg) {
                // Floor division toward -inf would differ for negatives; the
                // device epilogue truncates, so do the same.
                agg /= win * win;
              }
              pooled(m, (n * pooled_h + py) * pooled_w + px) =
                  static_cast<std::int32_t>(agg);
            }
          }
        }
      }
    } else {
      pooled = y32;
    }

    if (epi.has_quant) {
      res.packed.n = g.batch;
      res.packed.h = pooled_h;
      res.packed.w = pooled_w;
      res.packed.c = geom.m;
      res.packed.bits = epi.quant.bits;
      res.packed.planes.assign(
          static_cast<std::size_t>(epi.quant.bits),
          bitops::BitMatrix(g.batch * pooled_h * pooled_w, geom.m));
      for (std::int64_t m = 0; m < geom.m; ++m) {
        for (std::int64_t col = 0; col < g.batch * pooled_h * pooled_w;
             ++col) {
          const std::int32_t code =
              quant::quantize_value(static_cast<float>(pooled(m, col)),
                                    epi.quant);
          for (int bit = 0; bit < epi.quant.bits; ++bit) {
            if ((code >> bit) & 1) {
              res.packed.planes[static_cast<std::size_t>(bit)].set(col, m,
                                                                   true);
            }
          }
        }
      }
    } else {
      res.y = Tensor<std::int32_t>({g.batch, pooled_h, pooled_w, geom.m});
      for (std::int64_t m = 0; m < geom.m; ++m) {
        for (std::int64_t col = 0; col < g.batch * pooled_h * pooled_w;
             ++col) {
          res.y[col * geom.m + m] = pooled(m, col);
        }
      }
    }
  }
  return res;
}

}  // namespace apnn::core

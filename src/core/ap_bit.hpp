// AP-BIT emulation template (paper §3.1).
//
// Arbitrary-precision integer GEMM is emulated with 1-bit operations:
//   (a) bit decomposition   W -> W^(s), X -> X^(t)       (Eq. 2)
//   (b) 1-bit tensor-core computation Y^(s,t) = bmma(W^(s), X^(t))
//   (c) bit combination     Y = sum_{s,t} Y^(s,t) * 2^(s+t)  (Eq. 1)
//
// This header provides the operand representation plus two reference
// implementations: the 8x8x128 single-tile template of Figure 2 (built on
// the simulated bmma primitive) and a scalar golden-model GEMM for any
// shape. The production kernel with tiling/caching/batching is apmm.hpp.
#pragma once

#include <cstdint>

#include "src/bitops/decompose.hpp"
#include "src/core/op_select.hpp"
#include "src/layout/tensor.hpp"

namespace apnn::core {

/// A GEMM operand: decomposed bit planes plus the encoding its bits carry.
struct ApOperand {
  bitops::BitPlanes planes;
  Encoding encoding = Encoding::kUnsigned01;

  std::int64_t rows() const { return planes.rows; }
  std::int64_t cols() const { return planes.cols; }
  int bits() const { return planes.bits; }
};

/// Builds an operand from a dense matrix of *logical* values (row-major
/// rows x cols): e.g. {-1, +1} for kSignedPM1, [0, 2^bits) for kUnsigned01,
/// or signed integers for kTwosComplement. Values are range-checked.
ApOperand make_operand(const Tensor<std::int32_t>& logical, Encoding enc,
                       int bits);

/// Inverse of make_operand (decode planes back to logical values).
Tensor<std::int32_t> operand_to_logical(const ApOperand& op);

/// Golden-model arbitrary-precision GEMM: Y[m][n] = sum_k W[m][k] * X[n][k]
/// over the logical values, computed via decompose -> 1-bit dot products ->
/// finalize -> combine. X is stored N x K (rows are feature vectors).
Tensor<std::int32_t> ap_gemm_reference(const ApOperand& w, const ApOperand& x);

/// The Figure-2 single-tile template: requires both operands to be exactly
/// 8 x 128; runs p*q simulated bmma tile ops and combines. Returns 8 x 8.
Tensor<std::int32_t> ap_bit_template_tile(const ApOperand& w,
                                          const ApOperand& x);

}  // namespace apnn::core

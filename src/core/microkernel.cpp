#include "src/core/microkernel.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/check.hpp"
#include "src/parallel/scratch.hpp"

namespace apnn::core::microkernel {

void stage_panel(const std::uint64_t* const* rows, std::int64_t nrows,
                 std::int64_t w0, std::int64_t words, std::uint64_t* panel) {
  for (std::int64_t i = 0; i < nrows; ++i) {
    std::uint64_t* dst = panel + i * words;
    if (rows[i] != nullptr) {
      std::memcpy(dst, rows[i] + w0,
                  static_cast<std::size_t>(words) * sizeof(std::uint64_t));
    } else {
      std::memset(dst, 0,
                  static_cast<std::size_t>(words) * sizeof(std::uint64_t));
    }
  }
}

void stage_panel_transposed(const std::uint64_t* const* rows,
                            std::int64_t nrows, std::int64_t w0,
                            std::int64_t words, std::uint64_t* panel) {
  for (std::int64_t j = 0; j < nrows; ++j) {
    const std::uint64_t* src = rows[j];
    if (src != nullptr) {
      for (std::int64_t w = 0; w < words; ++w) {
        panel[w * nrows + j] = src[w0 + w];
      }
    } else {
      for (std::int64_t w = 0; w < words; ++w) {
        panel[w * nrows + j] = 0;
      }
    }
  }
}

void PanelSource::stage_transposed(std::int64_t w0, std::int64_t words,
                                   std::uint64_t* panel,
                                   std::uint64_t* scratch) const {
  const std::int64_t n = rows();
  stage(w0, words, scratch);
  for (std::int64_t j = 0; j < n; ++j) {
    const std::uint64_t* src = scratch + j * words;
    for (std::int64_t w = 0; w < words; ++w) {
      panel[w * n + j] = src[w];
    }
  }
}

namespace {

#if defined(__AVX512BW__)

// B is staged word-interleaved (panel[w * cols8 + j]), so one 512-bit load
// covers word w of 8 consecutive output columns and psadbw's eight 64-bit
// lanes ARE the eight per-column partial sums — no horizontal reduction per
// output element, the killer overhead when K is only a few words. Byte-wise
// counters flush to the lane accumulator at most every 31 words (8 bits max
// per byte per word, 255 ceiling).
template <tcsim::BitOp Op>
void rowblock_strip(const std::uint64_t* a_panel, std::int64_t rows8,
                    const std::uint64_t* bt_panel, std::int64_t cols8,
                    std::int64_t words, std::int32_t* raw) {
  constexpr std::int64_t kMaxWordsPerChunk = 31;
  for (std::int64_t i = 0; i < rows8; ++i) {
    const std::uint64_t* ap = a_panel + i * words;
    for (std::int64_t j = 0; j < cols8; j += 8) {
      __m512i acc64 = _mm512_setzero_si512();
      std::int64_t w = 0;
      while (w < words) {
        const std::int64_t chunk =
            std::min<std::int64_t>(words - w, kMaxWordsPerChunk);
        __m512i bytes = _mm512_setzero_si512();
        for (std::int64_t s = 0; s < chunk; ++s, ++w) {
          const __m512i av =
              _mm512_set1_epi64(static_cast<long long>(ap[w]));
          const __m512i bv = _mm512_loadu_si512(bt_panel + w * cols8 + j);
          bytes = _mm512_add_epi8(
              bytes, detail::popcount_bytes512(detail::bit_op512<Op>(av, bv)));
        }
        acc64 = _mm512_add_epi64(acc64,
                                 _mm512_sad_epu8(bytes, _mm512_setzero_si512()));
      }
      std::int32_t* dst = raw + i * cols8 + j;
      // maskz form: the plain _mm512_cvtepi64_epi32 seeds its destination
      // with _mm256_undefined_si256, which trips gcc's -Wmaybe-uninitialized
      // at -O3 (GCC PR105593); the zero seed emits the same vpmovqd.
      const __m256i lanes = _mm512_maskz_cvtepi64_epi32(0xff, acc64);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst),
          _mm256_add_epi32(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst)),
              lanes));
    }
  }
}

constexpr bool kUseTransposedB = true;

#elif defined(__AVX2__)

// AVX2 flavor of the word-interleaved kernel: 256-bit vectors cover word w
// of 4 consecutive output columns; psadbw's four 64-bit lanes are the four
// per-column partials.
template <tcsim::BitOp Op>
void rowblock_strip(const std::uint64_t* a_panel, std::int64_t rows8,
                    const std::uint64_t* bt_panel, std::int64_t cols8,
                    std::int64_t words, std::int32_t* raw) {
  constexpr std::int64_t kMaxWordsPerChunk = 31;
  for (std::int64_t i = 0; i < rows8; ++i) {
    const std::uint64_t* ap = a_panel + i * words;
    for (std::int64_t j = 0; j < cols8; j += 4) {
      __m256i acc64 = _mm256_setzero_si256();
      std::int64_t w = 0;
      while (w < words) {
        const std::int64_t chunk =
            std::min<std::int64_t>(words - w, kMaxWordsPerChunk);
        __m256i bytes = _mm256_setzero_si256();
        for (std::int64_t s = 0; s < chunk; ++s, ++w) {
          const __m256i av =
              _mm256_set1_epi64x(static_cast<long long>(ap[w]));
          const __m256i bv = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(bt_panel + w * cols8 + j));
          bytes = _mm256_add_epi8(
              bytes, detail::popcount_bytes(detail::bit_op256<Op>(av, bv)));
        }
        acc64 = _mm256_add_epi64(acc64,
                                 _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
      }
      alignas(32) std::int64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc64);
      std::int32_t* dst = raw + i * cols8 + j;
      dst[0] += static_cast<std::int32_t>(lanes[0]);
      dst[1] += static_cast<std::int32_t>(lanes[1]);
      dst[2] += static_cast<std::int32_t>(lanes[2]);
      dst[3] += static_cast<std::int32_t>(lanes[3]);
    }
  }
}

constexpr bool kUseTransposedB = true;

#else

constexpr bool kUseTransposedB = false;

#endif

template <tcsim::BitOp Op>
void block_bitgemm_impl(const std::uint64_t* const* a_rows, std::int64_t rows8,
                        const PanelSource& b, std::int64_t row_words,
                        std::int32_t* acc, parallel::ScratchArena& arena,
                        const MicroConfig& micro) {
  const std::int64_t cols8 = b.rows();
  const std::int64_t strip =
      std::min<std::int64_t>(micro.effective_strip(), row_words);
  // The transposed row-block kernel only exists on SIMD builds; kRowMajor
  // forces the 8x8 tile path there (a tuning candidate — it wins when the
  // per-column psadbw lanes are wasted on tiny column counts).
  bool transposed = false;
  if constexpr (kUseTransposedB) {
    transposed = micro.staging != MicroConfig::Staging::kRowMajor;
  }
  std::uint64_t* a_panel = arena.get<std::uint64_t>(rows8 * strip);
  std::uint64_t* b_panel = arena.get<std::uint64_t>(cols8 * strip);
  std::uint64_t* b_scratch = transposed && !b.direct_transpose()
                                 ? arena.get<std::uint64_t>(cols8 * strip)
                                 : nullptr;

  for (std::int64_t w0 = 0; w0 < row_words; w0 += strip) {
    const std::int64_t wc = std::min<std::int64_t>(strip, row_words - w0);
    stage_panel(a_rows, rows8, w0, wc, a_panel);
    if constexpr (kUseTransposedB) {
      if (transposed) {
        b.stage_transposed(w0, wc, b_panel, b_scratch);
        rowblock_strip<Op>(a_panel, rows8, b_panel, cols8, wc, acc);
        continue;
      }
    }
    b.stage(w0, wc, b_panel);
    for (std::int64_t ii = 0; ii < rows8; ii += 8) {
      const std::uint64_t* a_tile = a_panel + ii * wc;
      std::int32_t* acc_row = acc + ii * cols8;
      for (std::int64_t jj = 0; jj < cols8; jj += 8) {
        tile_8x8_strip<Op>(a_tile, wc, b_panel + jj * wc, wc, wc,
                           acc_row + jj, cols8);
      }
    }
  }
}

}  // namespace

void block_bitgemm(tcsim::BitOp op, const std::uint64_t* const* a_rows,
                   std::int64_t rows8, const PanelSource& b,
                   std::int64_t row_words, std::int32_t* acc,
                   parallel::ScratchArena& arena, const MicroConfig& micro) {
  APNN_DCHECK(rows8 % 8 == 0 && b.rows() % 8 == 0)
      << "tile dims must be multiples of 8: " << rows8 << "x" << b.rows();
  APNN_DCHECK(micro.effective_strip() >= 1);
  if (rows8 == 0 || b.rows() == 0 || row_words == 0) return;
  if (op == tcsim::BitOp::kXor) {
    block_bitgemm_impl<tcsim::BitOp::kXor>(a_rows, rows8, b, row_words, acc,
                                           arena, micro);
  } else {
    block_bitgemm_impl<tcsim::BitOp::kAnd>(a_rows, rows8, b, row_words, acc,
                                           arena, micro);
  }
}

void block_bitgemm(tcsim::BitOp op, const std::uint64_t* const* a_rows,
                   std::int64_t rows8, const std::uint64_t* const* b_rows,
                   std::int64_t cols8, std::int64_t row_words,
                   std::int32_t* acc, parallel::ScratchArena& arena,
                   const MicroConfig& micro) {
  block_bitgemm(op, a_rows, rows8, RowPointerSource(b_rows, cols8), row_words,
                acc, arena, micro);
}

}  // namespace apnn::core::microkernel

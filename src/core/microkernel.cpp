#include "src/core/microkernel.hpp"

#include <algorithm>
#include <cstring>

#include "src/common/check.hpp"
#include "src/parallel/scratch.hpp"

namespace apnn::core::microkernel {

void stage_panel(const std::uint64_t* const* rows, std::int64_t nrows,
                 std::int64_t w0, std::int64_t words, std::uint64_t* panel) {
  for (std::int64_t i = 0; i < nrows; ++i) {
    std::uint64_t* dst = panel + i * words;
    if (rows[i] != nullptr) {
      std::memcpy(dst, rows[i] + w0,
                  static_cast<std::size_t>(words) * sizeof(std::uint64_t));
    } else {
      std::memset(dst, 0,
                  static_cast<std::size_t>(words) * sizeof(std::uint64_t));
    }
  }
}

void stage_panel_transposed(const std::uint64_t* const* rows,
                            std::int64_t nrows, std::int64_t w0,
                            std::int64_t words, std::uint64_t* panel) {
  for (std::int64_t j = 0; j < nrows; ++j) {
    const std::uint64_t* src = rows[j];
    if (src != nullptr) {
      for (std::int64_t w = 0; w < words; ++w) {
        panel[w * nrows + j] = src[w0 + w];
      }
    } else {
      for (std::int64_t w = 0; w < words; ++w) {
        panel[w * nrows + j] = 0;
      }
    }
  }
}

void PanelSource::stage_transposed(std::int64_t w0, std::int64_t words,
                                   std::uint64_t* panel,
                                   std::uint64_t* scratch) const {
  const std::int64_t n = rows();
  stage(w0, words, scratch);
  for (std::int64_t j = 0; j < n; ++j) {
    const std::uint64_t* src = scratch + j * words;
    for (std::int64_t w = 0; w < words; ++w) {
      panel[w * n + j] = src[w];
    }
  }
}

std::int64_t stage_panel_occ(const std::uint64_t* const* rows,
                             std::int64_t nrows, std::int64_t w0,
                             std::int64_t words, std::uint64_t* panel,
                             std::uint64_t* occ) {
  const std::int64_t mw = occ_words(words);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < nrows; ++i) {
    std::uint64_t* dst = panel + i * words;
    std::uint64_t* oc = occ + i * mw;
    const std::uint64_t* src = rows[i];
    if (src == nullptr) {
      std::memset(dst, 0,
                  static_cast<std::size_t>(words) * sizeof(std::uint64_t));
      for (std::int64_t c = 0; c < mw; ++c) oc[c] = 0;
      zeros += words;  // virtual padding rows are entirely skippable
      continue;
    }
    std::memcpy(dst, src + w0,
                static_cast<std::size_t>(words) * sizeof(std::uint64_t));
    zeros += occ_scan_row(dst, words, oc);
  }
  return zeros;
}

std::int64_t stage_panel_transposed_occ(const std::uint64_t* const* rows,
                                        std::int64_t nrows, std::int64_t w0,
                                        std::int64_t words,
                                        std::uint64_t* panel,
                                        std::uint64_t* occ) {
  const std::int64_t mw = occ_words(words);
  std::int64_t zeros = 0;
  for (std::int64_t j = 0; j < nrows; ++j) {
    std::uint64_t* oc = occ + j * mw;
    const std::uint64_t* src = rows[j];
    if (src == nullptr) {
      for (std::int64_t w = 0; w < words; ++w) panel[w * nrows + j] = 0;
      for (std::int64_t c = 0; c < mw; ++c) oc[c] = 0;
      zeros += words;
      continue;
    }
    for (std::int64_t w = 0; w < words; ++w) {
      panel[w * nrows + j] = src[w0 + w];
    }
    // Scan the contiguous source row, not the word-interleaved panel.
    zeros += occ_scan_row(src + w0, words, oc);
  }
  return zeros;
}

std::int64_t PanelSource::stage_occ(std::int64_t w0, std::int64_t words,
                                    std::uint64_t* panel,
                                    std::uint64_t* occ) const {
  const std::int64_t n = rows();
  stage(w0, words, panel);
  const std::int64_t mw = occ_words(words);
  std::int64_t zeros = 0;
  for (std::int64_t j = 0; j < n; ++j) {
    zeros += occ_scan_row(panel + j * words, words, occ + j * mw);
  }
  return zeros;
}

std::int64_t PanelSource::stage_transposed_occ(std::int64_t w0,
                                               std::int64_t words,
                                               std::uint64_t* panel,
                                               std::uint64_t* scratch,
                                               std::uint64_t* occ) const {
  const std::int64_t n = rows();
  // The default stage_transposed writes the row-major copy into `scratch`
  // before interleaving, so the occupancy scan reads contiguous rows.
  stage_transposed(w0, words, panel, scratch);
  const std::int64_t mw = occ_words(words);
  std::int64_t zeros = 0;
  for (std::int64_t j = 0; j < n; ++j) {
    zeros += occ_scan_row(scratch + j * words, words, occ + j * mw);
  }
  return zeros;
}

namespace {

#if defined(__AVX512BW__)

// B is staged word-interleaved (panel[w * cols8 + j]), so one 512-bit load
// covers word w of 8 consecutive output columns and psadbw's eight 64-bit
// lanes ARE the eight per-column partial sums — no horizontal reduction per
// output element, the killer overhead when K is only a few words. Byte-wise
// counters flush to the lane accumulator at most every 31 words (8 bits max
// per byte per word, 255 ceiling).
template <tcsim::BitOp Op>
void rowblock_strip(const std::uint64_t* a_panel, std::int64_t rows8,
                    const std::uint64_t* bt_panel, std::int64_t cols8,
                    std::int64_t words, std::int32_t* raw) {
  constexpr std::int64_t kMaxWordsPerChunk = 31;
  for (std::int64_t i = 0; i < rows8; ++i) {
    const std::uint64_t* ap = a_panel + i * words;
    for (std::int64_t j = 0; j < cols8; j += 8) {
      __m512i acc64 = _mm512_setzero_si512();
      std::int64_t w = 0;
      while (w < words) {
        const std::int64_t chunk =
            std::min<std::int64_t>(words - w, kMaxWordsPerChunk);
        __m512i bytes = _mm512_setzero_si512();
        for (std::int64_t s = 0; s < chunk; ++s, ++w) {
          const __m512i av =
              _mm512_set1_epi64(static_cast<long long>(ap[w]));
          const __m512i bv = _mm512_loadu_si512(bt_panel + w * cols8 + j);
          bytes = _mm512_add_epi8(
              bytes, detail::popcount_bytes512(detail::bit_op512<Op>(av, bv)));
        }
        acc64 = _mm512_add_epi64(acc64,
                                 _mm512_sad_epu8(bytes, _mm512_setzero_si512()));
      }
      std::int32_t* dst = raw + i * cols8 + j;
      // maskz form: the plain _mm512_cvtepi64_epi32 seeds its destination
      // with _mm256_undefined_si256, which trips gcc's -Wmaybe-uninitialized
      // at -O3 (GCC PR105593); the zero seed emits the same vpmovqd.
      const __m256i lanes = _mm512_maskz_cvtepi64_epi32(0xff, acc64);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst),
          _mm256_add_epi32(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst)),
              lanes));
    }
  }
}

// Column-block width of the row-block kernel: occupancy masks for B are
// OR-combined over this many columns before the skip sweep.
constexpr std::int64_t kColBlock = 8;

// Occupancy-consulting flavor: per (row, column-block) lane, words whose
// combined mask bit is clear contribute exactly zero (AND: either operand
// word is zero; XOR: both are) and are skipped outright. Saturated lanes
// fall back to the sequential sweep so dense data never pays the bit-scan;
// the 31-word byte-counter budget carries across skip runs.
template <tcsim::BitOp Op>
void rowblock_strip_sparse(const std::uint64_t* a_panel, std::int64_t rows8,
                           const std::uint64_t* bt_panel, std::int64_t cols8,
                           std::int64_t words, const std::uint64_t* occ_a,
                           const std::uint64_t* occ_gb, std::int64_t mw,
                           std::int32_t* raw) {
  constexpr std::int64_t kMaxWordsPerChunk = 31;
  for (std::int64_t i = 0; i < rows8; ++i) {
    const std::uint64_t* ap = a_panel + i * words;
    const std::uint64_t* oa = occ_a + i * mw;
    for (std::int64_t j = 0; j < cols8; j += kColBlock) {
      const std::uint64_t* ob = occ_gb + (j / kColBlock) * mw;
      std::int64_t active = 0;
      for (std::int64_t c = 0; c < mw; ++c) {
        const std::uint64_t m =
            Op == tcsim::BitOp::kAnd ? oa[c] & ob[c] : oa[c] | ob[c];
        active += __builtin_popcountll(m);
      }
      if (active == 0) continue;  // whole lane contributes nothing
      __m512i acc64 = _mm512_setzero_si512();
      if (active == words) {
        std::int64_t w = 0;
        while (w < words) {
          const std::int64_t chunk =
              std::min<std::int64_t>(words - w, kMaxWordsPerChunk);
          __m512i bytes = _mm512_setzero_si512();
          for (std::int64_t s = 0; s < chunk; ++s, ++w) {
            const __m512i av =
                _mm512_set1_epi64(static_cast<long long>(ap[w]));
            const __m512i bv = _mm512_loadu_si512(bt_panel + w * cols8 + j);
            bytes = _mm512_add_epi8(
                bytes,
                detail::popcount_bytes512(detail::bit_op512<Op>(av, bv)));
          }
          acc64 = _mm512_add_epi64(
              acc64, _mm512_sad_epu8(bytes, _mm512_setzero_si512()));
        }
      } else {
        __m512i bytes = _mm512_setzero_si512();
        std::int64_t budget = kMaxWordsPerChunk;
        for (std::int64_t c = 0; c < mw; ++c) {
          std::uint64_t m =
              Op == tcsim::BitOp::kAnd ? oa[c] & ob[c] : oa[c] | ob[c];
          const std::int64_t base = c * 64;
          while (m != 0) {
            const std::int64_t w = base + __builtin_ctzll(m);
            m &= m - 1;
            const __m512i av =
                _mm512_set1_epi64(static_cast<long long>(ap[w]));
            const __m512i bv = _mm512_loadu_si512(bt_panel + w * cols8 + j);
            bytes = _mm512_add_epi8(
                bytes,
                detail::popcount_bytes512(detail::bit_op512<Op>(av, bv)));
            if (--budget == 0) {
              acc64 = _mm512_add_epi64(
                  acc64, _mm512_sad_epu8(bytes, _mm512_setzero_si512()));
              bytes = _mm512_setzero_si512();
              budget = kMaxWordsPerChunk;
            }
          }
        }
        acc64 = _mm512_add_epi64(
            acc64, _mm512_sad_epu8(bytes, _mm512_setzero_si512()));
      }
      std::int32_t* dst = raw + i * cols8 + j;
      const __m256i lanes = _mm512_maskz_cvtepi64_epi32(0xff, acc64);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst),
          _mm256_add_epi32(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst)),
              lanes));
    }
  }
}

constexpr bool kUseTransposedB = true;

#elif defined(__AVX2__)

// AVX2 flavor of the word-interleaved kernel: 256-bit vectors cover word w
// of 4 consecutive output columns; psadbw's four 64-bit lanes are the four
// per-column partials.
template <tcsim::BitOp Op>
void rowblock_strip(const std::uint64_t* a_panel, std::int64_t rows8,
                    const std::uint64_t* bt_panel, std::int64_t cols8,
                    std::int64_t words, std::int32_t* raw) {
  constexpr std::int64_t kMaxWordsPerChunk = 31;
  for (std::int64_t i = 0; i < rows8; ++i) {
    const std::uint64_t* ap = a_panel + i * words;
    for (std::int64_t j = 0; j < cols8; j += 4) {
      __m256i acc64 = _mm256_setzero_si256();
      std::int64_t w = 0;
      while (w < words) {
        const std::int64_t chunk =
            std::min<std::int64_t>(words - w, kMaxWordsPerChunk);
        __m256i bytes = _mm256_setzero_si256();
        for (std::int64_t s = 0; s < chunk; ++s, ++w) {
          const __m256i av =
              _mm256_set1_epi64x(static_cast<long long>(ap[w]));
          const __m256i bv = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(bt_panel + w * cols8 + j));
          bytes = _mm256_add_epi8(
              bytes, detail::popcount_bytes(detail::bit_op256<Op>(av, bv)));
        }
        acc64 = _mm256_add_epi64(acc64,
                                 _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
      }
      alignas(32) std::int64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc64);
      std::int32_t* dst = raw + i * cols8 + j;
      dst[0] += static_cast<std::int32_t>(lanes[0]);
      dst[1] += static_cast<std::int32_t>(lanes[1]);
      dst[2] += static_cast<std::int32_t>(lanes[2]);
      dst[3] += static_cast<std::int32_t>(lanes[3]);
    }
  }
}

constexpr std::int64_t kColBlock = 4;

// Occupancy-consulting AVX2 flavor; see the AVX-512 variant for the skip
// rules. Column-block masks cover 4 columns here (one 256-bit lane group).
template <tcsim::BitOp Op>
void rowblock_strip_sparse(const std::uint64_t* a_panel, std::int64_t rows8,
                           const std::uint64_t* bt_panel, std::int64_t cols8,
                           std::int64_t words, const std::uint64_t* occ_a,
                           const std::uint64_t* occ_gb, std::int64_t mw,
                           std::int32_t* raw) {
  constexpr std::int64_t kMaxWordsPerChunk = 31;
  for (std::int64_t i = 0; i < rows8; ++i) {
    const std::uint64_t* ap = a_panel + i * words;
    const std::uint64_t* oa = occ_a + i * mw;
    for (std::int64_t j = 0; j < cols8; j += kColBlock) {
      const std::uint64_t* ob = occ_gb + (j / kColBlock) * mw;
      std::int64_t active = 0;
      for (std::int64_t c = 0; c < mw; ++c) {
        const std::uint64_t m =
            Op == tcsim::BitOp::kAnd ? oa[c] & ob[c] : oa[c] | ob[c];
        active += __builtin_popcountll(m);
      }
      if (active == 0) continue;
      __m256i acc64 = _mm256_setzero_si256();
      if (active == words) {
        std::int64_t w = 0;
        while (w < words) {
          const std::int64_t chunk =
              std::min<std::int64_t>(words - w, kMaxWordsPerChunk);
          __m256i bytes = _mm256_setzero_si256();
          for (std::int64_t s = 0; s < chunk; ++s, ++w) {
            const __m256i av =
                _mm256_set1_epi64x(static_cast<long long>(ap[w]));
            const __m256i bv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(bt_panel + w * cols8 + j));
            bytes = _mm256_add_epi8(
                bytes, detail::popcount_bytes(detail::bit_op256<Op>(av, bv)));
          }
          acc64 = _mm256_add_epi64(
              acc64, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
        }
      } else {
        __m256i bytes = _mm256_setzero_si256();
        std::int64_t budget = kMaxWordsPerChunk;
        for (std::int64_t c = 0; c < mw; ++c) {
          std::uint64_t m =
              Op == tcsim::BitOp::kAnd ? oa[c] & ob[c] : oa[c] | ob[c];
          const std::int64_t base = c * 64;
          while (m != 0) {
            const std::int64_t w = base + __builtin_ctzll(m);
            m &= m - 1;
            const __m256i av =
                _mm256_set1_epi64x(static_cast<long long>(ap[w]));
            const __m256i bv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(bt_panel + w * cols8 + j));
            bytes = _mm256_add_epi8(
                bytes, detail::popcount_bytes(detail::bit_op256<Op>(av, bv)));
            if (--budget == 0) {
              acc64 = _mm256_add_epi64(
                  acc64, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
              bytes = _mm256_setzero_si256();
              budget = kMaxWordsPerChunk;
            }
          }
        }
        acc64 = _mm256_add_epi64(
            acc64, _mm256_sad_epu8(bytes, _mm256_setzero_si256()));
      }
      alignas(32) std::int64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc64);
      std::int32_t* dst = raw + i * cols8 + j;
      dst[0] += static_cast<std::int32_t>(lanes[0]);
      dst[1] += static_cast<std::int32_t>(lanes[1]);
      dst[2] += static_cast<std::int32_t>(lanes[2]);
      dst[3] += static_cast<std::int32_t>(lanes[3]);
    }
  }
}

constexpr bool kUseTransposedB = true;

#else

constexpr bool kUseTransposedB = false;
constexpr std::int64_t kColBlock = 8;

#endif

// kAuto engages the skip kernels only when staging saw at least this share
// of all-zero words on the gating operand (AND: max of the two sides, since
// either side's zero kills the word; XOR: min, since both must be zero).
// Break-even sits well above the first nonzero occupancy: per-lane mask
// plumbing costs the skip kernels ~10-20% of the dense sweep, and B-side
// zeros dilute through the column-group OR, so strips below ~a third zero
// words run faster dense (the w1a2 forward bench regresses with a lower
// gate; the sparsity sweep's 50%+ points keep their full win).
constexpr double kSparseZeroGate = 0.34;

// kAuto occupancy-sampling floor on the smaller panel dimension: a full
// default tile block on both sides. Skinnier blocks (small-channel conv
// weight panels, classifier heads) spend comparably on the O(rows8+cols8)
// scan and bookkeeping as on the strip's popcount sweep, so sampling them
// can never pay for itself there.
constexpr std::int64_t kSparseMinDim = 64;

// OR-combine each group of `group` consecutive occupancy rows into one mask
// (column blocks for the row-block kernel, 8-row tiles for the tile path).
void build_group_occ(const std::uint64_t* occ, std::int64_t nrows,
                     std::int64_t group, std::int64_t mw, std::uint64_t* out) {
  for (std::int64_t g0 = 0, o = 0; g0 < nrows; g0 += group, ++o) {
    std::uint64_t* dst = out + o * mw;
    for (std::int64_t c = 0; c < mw; ++c) dst[c] = 0;
    for (std::int64_t r = 0; r < group; ++r) {
      const std::uint64_t* src = occ + (g0 + r) * mw;
      for (std::int64_t c = 0; c < mw; ++c) dst[c] |= src[c];
    }
  }
}

template <tcsim::BitOp Op>
void block_bitgemm_impl(const std::uint64_t* const* a_rows, std::int64_t rows8,
                        const PanelSource& b, std::int64_t row_words,
                        std::int32_t* acc, parallel::ScratchArena& arena,
                        const MicroConfig& micro, SparsityStats* stats) {
  const std::int64_t cols8 = b.rows();
  const std::int64_t strip =
      std::min<std::int64_t>(micro.effective_strip(), row_words);
  // The transposed row-block kernel only exists on SIMD builds; kRowMajor
  // forces the 8x8 tile path there (a tuning candidate — it wins when the
  // per-column psadbw lanes are wasted on tiny column counts).
  bool transposed = false;
  if constexpr (kUseTransposedB) {
    transposed = micro.staging != MicroConfig::Staging::kRowMajor;
  }
  // kAuto adaptivity: occupancy staging costs a few percent over memcpy
  // staging, so once a strip measures hopelessly dense (under half the gate
  // on the op's skip side) the remaining strips of this block stage dense.
  // Every call re-samples from its first strip, so a stage whose inputs
  // turn sparse regains the fast path on the next kernel invocation.
  // kAuto only samples blocks at least kSparseMinDim on both panel sides;
  // skinnier blocks stage dense outright. kOn still forces occupancy
  // everywhere.
  bool build_occ = micro.sparse_staging == MicroConfig::Sparse::kOn ||
                   (micro.sparse_staging == MicroConfig::Sparse::kAuto &&
                    std::min(rows8, cols8) >= kSparseMinDim);
  const std::int64_t mw = build_occ ? occ_words(strip) : 0;
  std::uint64_t* a_panel = arena.get<std::uint64_t>(rows8 * strip);
  std::uint64_t* b_panel = arena.get<std::uint64_t>(cols8 * strip);
  std::uint64_t* b_scratch = transposed && !b.direct_transpose()
                                 ? arena.get<std::uint64_t>(cols8 * strip)
                                 : nullptr;
  // Occupancy buffers live alongside the panels: allocated once up front so
  // the per-strip loop stays free of arena growth (bump allocator).
  std::uint64_t* occ_a = nullptr;
  std::uint64_t* occ_b = nullptr;
  std::uint64_t* occ_ga = nullptr;   // 8-row tile masks of A (tile path)
  std::uint64_t* occ_gb = nullptr;   // column-group masks of B
  std::uint64_t* maskbuf = nullptr;  // combined run mask (tile path)
  if (build_occ) {
    occ_a = arena.get<std::uint64_t>(rows8 * mw);
    occ_b = arena.get<std::uint64_t>(cols8 * mw);
    if (transposed) {
      occ_gb = arena.get<std::uint64_t>((cols8 / kColBlock) * mw);
    } else {
      occ_ga = arena.get<std::uint64_t>((rows8 / 8) * mw);
      occ_gb = arena.get<std::uint64_t>((cols8 / 8) * mw);
      maskbuf = arena.get<std::uint64_t>(mw);
    }
  }

  std::int64_t st_staged = 0, st_zero = 0, st_sparse = 0, st_dense = 0;
  for (std::int64_t w0 = 0; w0 < row_words; w0 += strip) {
    const std::int64_t wc = std::min<std::int64_t>(strip, row_words - w0);
    const std::int64_t mwc = build_occ ? occ_words(wc) : 0;
    // Shared by both staging layouts: density gate + the adaptive opt-out
    // (only kAuto reaches the threshold math; kOn returns early).
    auto gate_sparse = [&](std::int64_t za_words, std::int64_t zb_words) {
      if (micro.sparse_staging == MicroConfig::Sparse::kOn) return true;
      const double za = static_cast<double>(za_words) /
                        static_cast<double>(rows8 * wc);
      const double zb = static_cast<double>(zb_words) /
                        static_cast<double>(cols8 * wc);
      const double g = Op == tcsim::BitOp::kAnd ? std::max(za, zb)
                                                : std::min(za, zb);
      if (g < 0.5 * kSparseZeroGate) build_occ = false;
      return g >= kSparseZeroGate;
    };
    std::int64_t zero_a = 0;
    if (build_occ) {
      zero_a = stage_panel_occ(a_rows, rows8, w0, wc, a_panel, occ_a);
    } else {
      stage_panel(a_rows, rows8, w0, wc, a_panel);
    }
    std::int64_t zero_b = 0;
    if constexpr (kUseTransposedB) {
      if (transposed) {
        if (build_occ) {
          zero_b = b.stage_transposed_occ(w0, wc, b_panel, b_scratch, occ_b);
        } else {
          b.stage_transposed(w0, wc, b_panel, b_scratch);
        }
        bool use_sparse = false;
        if (build_occ) {
          st_staged += (rows8 + cols8) * wc;
          st_zero += zero_a + zero_b;
          use_sparse = gate_sparse(zero_a, zero_b);
        }
        if (use_sparse) {
          build_group_occ(occ_b, cols8, kColBlock, mwc, occ_gb);
          rowblock_strip_sparse<Op>(a_panel, rows8, b_panel, cols8, wc, occ_a,
                                    occ_gb, mwc, acc);
          ++st_sparse;
        } else {
          rowblock_strip<Op>(a_panel, rows8, b_panel, cols8, wc, acc);
          ++st_dense;
        }
        continue;
      }
    }
    if (build_occ) {
      zero_b = b.stage_occ(w0, wc, b_panel, occ_b);
    } else {
      b.stage(w0, wc, b_panel);
    }
    bool use_sparse = false;
    if (build_occ) {
      st_staged += (rows8 + cols8) * wc;
      st_zero += zero_a + zero_b;
      use_sparse = gate_sparse(zero_a, zero_b);
    }
    if (use_sparse) {
      // Run-sliced tile path: OR the 8 per-row masks of each tile on both
      // sides, then feed maximal runs of active words to the dense 8x8
      // kernel unchanged — acc is +=, so per-run calls compose exactly.
      build_group_occ(occ_a, rows8, 8, mwc, occ_ga);
      build_group_occ(occ_b, cols8, 8, mwc, occ_gb);
      ++st_sparse;
      for (std::int64_t ii = 0; ii < rows8; ii += 8) {
        const std::uint64_t* ga = occ_ga + (ii / 8) * mwc;
        const std::uint64_t* a_tile = a_panel + ii * wc;
        std::int32_t* acc_row = acc + ii * cols8;
        for (std::int64_t jj = 0; jj < cols8; jj += 8) {
          const std::uint64_t* gb = occ_gb + (jj / 8) * mwc;
          for (std::int64_t c = 0; c < mwc; ++c) {
            maskbuf[c] =
                Op == tcsim::BitOp::kAnd ? ga[c] & gb[c] : ga[c] | gb[c];
          }
          const std::uint64_t* b_tile = b_panel + jj * wc;
          std::int64_t w = 0;
          while (w < wc) {
            if (((maskbuf[w >> 6] >> (w & 63)) & 1u) == 0) {
              ++w;
              continue;
            }
            const std::int64_t lo = w;
            while (w < wc && ((maskbuf[w >> 6] >> (w & 63)) & 1u) != 0) ++w;
            tile_8x8_strip<Op>(a_tile + lo, wc, b_tile + lo, wc, w - lo,
                               acc_row + jj, cols8);
          }
        }
      }
      continue;
    }
    ++st_dense;
    for (std::int64_t ii = 0; ii < rows8; ii += 8) {
      const std::uint64_t* a_tile = a_panel + ii * wc;
      std::int32_t* acc_row = acc + ii * cols8;
      for (std::int64_t jj = 0; jj < cols8; jj += 8) {
        tile_8x8_strip<Op>(a_tile, wc, b_panel + jj * wc, wc, wc,
                           acc_row + jj, cols8);
      }
    }
  }
  if (stats != nullptr) {
    stats->staged_words.fetch_add(st_staged, std::memory_order_relaxed);
    stats->zero_words.fetch_add(st_zero, std::memory_order_relaxed);
    stats->sparse_strips.fetch_add(st_sparse, std::memory_order_relaxed);
    stats->dense_strips.fetch_add(st_dense, std::memory_order_relaxed);
  }
}

}  // namespace

void block_bitgemm(tcsim::BitOp op, const std::uint64_t* const* a_rows,
                   std::int64_t rows8, const PanelSource& b,
                   std::int64_t row_words, std::int32_t* acc,
                   parallel::ScratchArena& arena, const MicroConfig& micro,
                   SparsityStats* stats) {
  APNN_DCHECK(rows8 % 8 == 0 && b.rows() % 8 == 0)
      << "tile dims must be multiples of 8: " << rows8 << "x" << b.rows();
  APNN_DCHECK(micro.effective_strip() >= 1);
  if (rows8 == 0 || b.rows() == 0 || row_words == 0) return;
  if (op == tcsim::BitOp::kXor) {
    block_bitgemm_impl<tcsim::BitOp::kXor>(a_rows, rows8, b, row_words, acc,
                                           arena, micro, stats);
  } else {
    block_bitgemm_impl<tcsim::BitOp::kAnd>(a_rows, rows8, b, row_words, acc,
                                           arena, micro, stats);
  }
}

void block_bitgemm(tcsim::BitOp op, const std::uint64_t* const* a_rows,
                   std::int64_t rows8, const std::uint64_t* const* b_rows,
                   std::int64_t cols8, std::int64_t row_words,
                   std::int32_t* acc, parallel::ScratchArena& arena,
                   const MicroConfig& micro, SparsityStats* stats) {
  block_bitgemm(op, a_rows, rows8, RowPointerSource(b_rows, cols8), row_words,
                acc, arena, micro, stats);
}

}  // namespace apnn::core::microkernel

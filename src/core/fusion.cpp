// fusion.hpp is header-only; this TU exists so the build exposes a single
// object per module and to anchor the vtable-free Epilogue in the library.
#include "src/core/fusion.hpp"

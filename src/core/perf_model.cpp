#include "src/core/perf_model.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "src/common/check.hpp"

namespace apnn::core {

double tlp(std::int64_t m, std::int64_t n, int p, int q, const TileConfig& t) {
  const double pm = static_cast<double>(p) * static_cast<double>(m);
  const double qn = static_cast<double>(q) * static_cast<double>(n);
  return pm * qn / (static_cast<double>(t.bm) * t.bn);
}

double compute_intensity(const TileConfig& t) {
  return 2.0 * t.bm * t.bn / static_cast<double>(t.bm + t.bn);
}

void assign_warp_grid(TileConfig& t) {
  // Candidate 8-warp partitions, the paper's 4x2 first.
  static constexpr int kGrids[][2] = {{4, 2}, {2, 4}, {8, 1}, {1, 8},
                                      {2, 2}, {4, 1}, {1, 4}, {2, 1},
                                      {1, 2}, {1, 1}};
  for (const auto& g : kGrids) {
    const int rows = g[0], cols = g[1];
    if (t.bm % (rows * 8) == 0 && t.bn % (cols * 8) == 0) {
      t.warp_rows = rows;
      t.warp_cols = cols;
      return;
    }
  }
  APNN_CHECK(false) << "no warp partition for bm=" << t.bm << " bn=" << t.bn;
}

TuneResult autotune_tile(std::int64_t m, std::int64_t n, std::int64_t k,
                         int p, int q, const tcsim::DeviceSpec& dev,
                         double tlp_threshold) {
  APNN_CHECK(m > 0 && n > 0 && k > 0);
  APNN_CHECK(p >= 1 && q >= 1);
  static constexpr int kSizes[] = {16, 32, 64, 128};

  struct Candidate {
    TileConfig tile;
    double tlp_v;
    double ci_v;
  };
  std::vector<Candidate> cands;
  for (int bm : kSizes) {
    for (int bn : kSizes) {
      TileConfig t;
      t.bm = bm;
      t.bn = bn;
      t.bk = 128;
      assign_warp_grid(t);
      if (t.shmem_bytes() > dev.shmem_per_sm) continue;
      cands.push_back({t, tlp(m, n, p, q, t), compute_intensity(t)});
    }
  }
  APNN_CHECK(!cands.empty());

  // Priority queue: highest TLP first (stable tie-break on CI then size so
  // the search is deterministic).
  std::sort(cands.begin(), cands.end(), [](const Candidate& a,
                                           const Candidate& b) {
    if (a.tlp_v != b.tlp_v) return a.tlp_v > b.tlp_v;
    if (a.ci_v != b.ci_v) return a.ci_v > b.ci_v;
    if (a.tile.bm != b.tile.bm) return a.tile.bm < b.tile.bm;
    return a.tile.bn < b.tile.bn;
  });

  // Head of the queue: maximum-TLP config. If even it is below the
  // threshold, stick with it (§4.3.2 step 1).
  Candidate best = cands.front();
  if (best.tlp_v < tlp_threshold) {
    TuneResult r{best.tile, best.tlp_v, best.ci_v};
    return r;
  }
  // Otherwise keep popping while TLP stays above the threshold, upgrading to
  // better CI (§4.3.2 step 2).
  for (const Candidate& c : cands) {
    if (c.tlp_v < tlp_threshold) break;
    if (c.ci_v > best.ci_v) best = c;
  }
  (void)k;  // k does not enter TLP/CI; kept for signature symmetry
  return TuneResult{best.tile, best.tlp_v, best.ci_v};
}

TileConfig clamp_tile_rows(TileConfig t, std::int64_t m, int p) {
  const std::int64_t vrows = m * static_cast<std::int64_t>(p);
  const auto cap =
      static_cast<int>(std::max<std::int64_t>(16, (vrows + 15) / 16 * 16));
  t.bm = std::min(t.bm, cap);
  return t;
}

std::vector<TileConfig> ranked_tiles(std::int64_t m, std::int64_t n,
                                     std::int64_t k, int p, int q,
                                     const tcsim::DeviceSpec& dev,
                                     std::size_t max_tiles,
                                     double tlp_threshold) {
  // The heuristic's own pick leads the list: the measuring caller then
  // degrades to exactly the heuristic plan when nothing beats it.
  const TileConfig head =
      clamp_tile_rows(autotune_tile(m, n, k, p, q, dev, tlp_threshold).tile,
                      m, p);

  static constexpr int kSizes[] = {16, 32, 64, 128};
  struct Candidate {
    TileConfig tile;
    double tlp_v;
    double ci_v;
  };
  std::vector<Candidate> cands;
  for (int bm : kSizes) {
    for (int bn : kSizes) {
      TileConfig t;
      t.bm = bm;
      t.bn = bn;
      t.bk = 128;
      assign_warp_grid(t);
      if (t.shmem_bytes() > dev.shmem_per_sm) continue;
      t = clamp_tile_rows(t, m, p);
      cands.push_back({t, tlp(m, n, p, q, t), compute_intensity(t)});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.tlp_v != b.tlp_v) return a.tlp_v > b.tlp_v;
              if (a.ci_v != b.ci_v) return a.ci_v > b.ci_v;
              if (a.tile.bm != b.tile.bm) return a.tile.bm < b.tile.bm;
              return a.tile.bn < b.tile.bn;
            });

  std::vector<TileConfig> out{head};
  auto seen = [&out](const TileConfig& t) {
    for (const TileConfig& o : out) {
      if (o.bm == t.bm && o.bn == t.bn) return true;
    }
    return false;
  };
  for (const Candidate& c : cands) {
    if (!seen(c.tile)) out.push_back(c.tile);
  }
  if (max_tiles > 0 && out.size() > max_tiles) out.resize(max_tiles);
  return out;
}

}  // namespace apnn::core

// Semantic-aware kernel fusion (§5.2): the elementwise tail of an NN layer —
// batch normalization, ReLU, quantization — applied to each 32-bit
// accumulator while it is still in a register, immediately after the
// in-shared-memory bit combination. Fusing removes the global-memory round
// trips (and kernel launches) separate BN / ReLU / quantize kernels cost.
//
// Pooling is fused at the APConv level (it is spatial, not elementwise) —
// see apconv.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/check.hpp"
#include "src/quant/quantizer.hpp"

namespace apnn::core {

/// Per-output-channel affine BN folded to y = x * scale + bias
/// (scale = gamma / sqrt(var + eps), bias = beta - mean * scale).
struct BatchNormParams {
  std::vector<float> scale;
  std::vector<float> bias;
};

/// Elementwise epilogue configuration. Operations apply in the fixed order
/// BN -> ReLU -> quantize (the composition the paper writes out in §5.2).
struct Epilogue {
  bool has_bn = false;
  BatchNormParams bn;

  bool has_relu = false;

  /// Quantize the (float) result to `quant.bits` unsigned codes; the kernel
  /// then emits bit-packed planes instead of int32 (minimal-traffic
  /// dataflow, §5.1).
  bool has_quant = false;
  quant::QuantParams quant;

  bool identity() const { return !has_bn && !has_relu && !has_quant; }

  /// ALU ops per element this epilogue costs (for the traffic counters).
  std::int64_t alu_ops_per_element() const {
    std::int64_t ops = 0;
    if (has_bn) ops += 2;     // fma
    if (has_relu) ops += 1;   // max
    if (has_quant) ops += 2;  // sub + mul(floor)
    return ops;
  }

  /// Applies the epilogue to one 32-bit accumulator of output channel `ch`.
  /// Returns the (possibly quantized) integer result. An identity epilogue
  /// is exact — no float round trip — so it agrees with the integer fast
  /// paths for accumulators beyond float's 2^24 integer range.
  std::int32_t apply(std::int32_t acc, std::int64_t ch) const {
    if (identity()) return acc;
    float v = static_cast<float>(acc);
    if (has_bn) {
      APNN_DCHECK(ch < static_cast<std::int64_t>(bn.scale.size()));
      v = v * bn.scale[static_cast<std::size_t>(ch)] +
          bn.bias[static_cast<std::size_t>(ch)];
    }
    if (has_relu && v < 0.f) v = 0.f;
    if (has_quant) return quant::quantize_value(v, quant);
    return static_cast<std::int32_t>(v);
  }

  /// Bit width of the emitted values: quant.bits when quantizing, else 32.
  int output_bits() const { return has_quant ? quant.bits : 32; }
};

}  // namespace apnn::core

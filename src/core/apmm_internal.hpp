// Internal machinery shared by the APMM and APConv kernels. Not part of the
// public API — include apmm.hpp / apconv.hpp instead.
//
// Both kernels are instances of the same virtually batched, plane-
// interleaved block GEMM; APConv differs only in how operands are produced
// (channel-major im2col), the input-aware padding correction, and the fused
// pooling tail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/bitops/bit_matrix.hpp"
#include "src/core/apconv.hpp"
#include "src/core/apmm.hpp"
#include "src/core/microkernel.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn::core::internal {

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

/// Geometry shared between the compute path and the counter formulas.
struct BatchedGeometry {
  std::int64_t m, n, k;
  int p, q;
  TileConfig tile;
  std::int64_t om, on;    ///< output rows/cols per block
  std::int64_t vtm, vtn;  ///< virtual tile dims (om*p, on*q)
  std::int64_t vtm8, vtn8;
  std::int64_t grid_m, grid_n, blocks;
  std::int64_t ktiles;    ///< 128-bit k-slabs
  std::int64_t row_words;

  /// Host-microkernel execution knobs (autotuner candidates). Neither field
  /// changes results or launch records — only where bytes move.
  microkernel::MicroConfig micro;
  bool combine_fast = true;  ///< allow the p=q=1 identity combine fast path

  /// Pool the block loops run on; nullptr = ThreadPool::global(). Execution
  /// knob only — results and launch records are identical for every pool.
  ThreadPool* pool = nullptr;

  /// Optional occupancy/elision counters filled during the run (thread-safe;
  /// observability only, never consulted for dispatch). nullptr = don't
  /// collect.
  microkernel::SparsityStats* sparsity = nullptr;
};

BatchedGeometry make_geometry(const ApOperand& w, const ApOperand& x,
                              const TileConfig& tile);

/// Dimension-only overload (profile-only callers have no operands in hand).
/// `col_align` rounds the per-block output-column count `on` up to a
/// multiple — the fused conv tail aligns blocks to whole pooling windows
/// (win² columns) so every window reduces inside exactly one block. 1 (the
/// default) reproduces the plain tiling.
BatchedGeometry make_geometry(std::int64_t m, std::int64_t n, std::int64_t k,
                              int p, int q, const TileConfig& tile,
                              std::int64_t col_align = 1);

/// Counter formulas for the batched kernel; full and profile-only execution
/// share them, so the two modes produce identical profiles by construction.
/// `store_scale` divides the number of stored output elements (fused pooling
/// stores one element per pool window); `extra_alu_per_out` adds per-stored-
/// element epilogue work beyond the Epilogue's own ops (e.g. pool reads).
tcsim::KernelProfile batched_profile(const BatchedGeometry& g,
                                     const OpSelection& sel,
                                     const ApmmOptions& opts,
                                     const Epilogue& epi,
                                     const std::string& name,
                                     std::int64_t store_scale = 1,
                                     std::int64_t extra_alu_per_out = 0);

/// The separate bit-combination kernel of the non-semantic-aware path.
tcsim::KernelProfile combine_kernel_profile(const BatchedGeometry& g,
                                            const Epilogue& epi);

/// Where the feature (B) operand's panels come from — the staging-source
/// abstraction of the batched kernel. Exactly one of the two layouts is
/// set:
///  * `planes`: contiguous packed bit planes (the APMM case, and any
///    pre-materialized patch matrix) staged through row-pointer tables;
///  * `fmap` + `conv`: a packed channel-major feature map whose patch rows
///    are window-gathered on the fly per k-strip (im2col-free APConv).
struct FeatureSource {
  const bitops::BitPlanes* planes = nullptr;

  const layout::PackedActivations* fmap = nullptr;
  const layout::ConvGeometry* conv = nullptr;
  bool pad_one = false;  ///< §4.2b input-aware padding bit for window gather
  int pool_win = 1;      ///< window-major column order granularity

  Encoding encoding = Encoding::kUnsigned01;
  int bits = 1;  ///< q: planes per GEMM column

  bool window_gather() const { return fmap != nullptr; }
};

/// Fused conv tail executed inside each block's epilogue (no separate
/// full-output pass): Case-II border correction, BN -> ReLU, pooling over
/// the block's (window-aligned) columns, then the quantize + bit-repack or
/// the dense NHWC store. `corr`, when set, is the §4.2b Case-II padding
/// amendment indexed [m * out_h*out_w + oy * out_w + ox].
struct ConvTail {
  const layout::ConvGeometry* g = nullptr;
  PoolSpec pool;
  const std::int32_t* corr = nullptr;

  bool active() const { return g != nullptr; }
};

/// Functional computation (identical for every option set — options only
/// change where bytes move). Writes either y (m x n int32) or, when the
/// epilogue quantizes, packed planes (n x m).
void run_batched_compute(const ApOperand& w, const ApOperand& x,
                         const OpSelection& sel, const BatchedGeometry& g,
                         const Epilogue& epi, Tensor<std::int32_t>* y,
                         bitops::BitPlanes* packed);

/// Generalized driver: the feature operand comes from `x` (contiguous
/// planes or window gather); when `tail` is active the block epilogue runs
/// the fused conv tail and the outputs are conv-shaped:
///  * y: dense post-pool NHWC {N, OH', OW', Cout} (epilogue not quantizing);
///  * packed: channel-major planes, rows = N*OH'*OW' pooled positions, cols
///    = Cout (quantizing epilogue) — ready to feed the next conv layer.
/// With an inactive tail the outputs are the APMM shapes above. The block
/// geometry `g` must have been built with col_align = pool window² when the
/// tail pools (see make_geometry).
void run_batched_compute(const ApOperand& w, const FeatureSource& x,
                         const OpSelection& sel, const BatchedGeometry& g,
                         const Epilogue& epi, const ConvTail& tail,
                         Tensor<std::int32_t>* y, bitops::BitPlanes* packed);

}  // namespace apnn::core::internal

// Internal machinery shared by the APMM and APConv kernels. Not part of the
// public API — include apmm.hpp / apconv.hpp instead.
//
// Both kernels are instances of the same virtually batched, plane-
// interleaved block GEMM; APConv differs only in how operands are produced
// (channel-major im2col), the input-aware padding correction, and the fused
// pooling tail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/bitops/bit_matrix.hpp"
#include "src/core/apmm.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn::core::internal {

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

/// Geometry shared between the compute path and the counter formulas.
struct BatchedGeometry {
  std::int64_t m, n, k;
  int p, q;
  TileConfig tile;
  std::int64_t om, on;    ///< output rows/cols per block
  std::int64_t vtm, vtn;  ///< virtual tile dims (om*p, on*q)
  std::int64_t vtm8, vtn8;
  std::int64_t grid_m, grid_n, blocks;
  std::int64_t ktiles;    ///< 128-bit k-slabs
  std::int64_t row_words;
};

BatchedGeometry make_geometry(const ApOperand& w, const ApOperand& x,
                              const TileConfig& tile);

/// Dimension-only overload (profile-only callers have no operands in hand).
BatchedGeometry make_geometry(std::int64_t m, std::int64_t n, std::int64_t k,
                              int p, int q, const TileConfig& tile);

/// Counter formulas for the batched kernel; full and profile-only execution
/// share them, so the two modes produce identical profiles by construction.
/// `store_scale` divides the number of stored output elements (fused pooling
/// stores one element per pool window); `extra_alu_per_out` adds per-stored-
/// element epilogue work beyond the Epilogue's own ops (e.g. pool reads).
tcsim::KernelProfile batched_profile(const BatchedGeometry& g,
                                     const OpSelection& sel,
                                     const ApmmOptions& opts,
                                     const Epilogue& epi,
                                     const std::string& name,
                                     std::int64_t store_scale = 1,
                                     std::int64_t extra_alu_per_out = 0);

/// The separate bit-combination kernel of the non-semantic-aware path.
tcsim::KernelProfile combine_kernel_profile(const BatchedGeometry& g,
                                            const Epilogue& epi);

/// Functional computation (identical for every option set — options only
/// change where bytes move). Writes either y (m x n int32) or, when the
/// epilogue quantizes, packed planes (n x m).
void run_batched_compute(const ApOperand& w, const ApOperand& x,
                         const OpSelection& sel, const BatchedGeometry& g,
                         const Epilogue& epi, Tensor<std::int32_t>* y,
                         bitops::BitPlanes* packed);

}  // namespace apnn::core::internal

#include "src/core/apmm.hpp"

#include <string>

#include "src/core/apmm_internal.hpp"

namespace apnn::core {

using internal::BatchedGeometry;
using internal::ceil_div;
using internal::round_up;

namespace {

std::string kernel_name(int p, int q) {
  return "apmm-w" + std::to_string(p) + "a" + std::to_string(q);
}

}  // namespace

ApmmResult apmm(const ApOperand& w, const ApOperand& x,
                const tcsim::DeviceSpec& dev, const ApmmOptions& opts,
                const Epilogue& epi) {
  APNN_CHECK(w.cols() == x.cols())
      << "K mismatch: " << w.cols() << " vs " << x.cols();
  const OpSelection sel = select_operator({w.encoding, x.encoding});
  if (sel.kind == EmulationCase::kCaseII) {
    APNN_CHECK(w.bits() == 1 && x.bits() == 1)
        << "Case II (±1 x ±1) requires 1-bit operands";
  }

  ApmmResult res;
  TileConfig tile = opts.tile;
  if (opts.autotune) {
    tile = autotune_tile(w.rows(), x.rows(), w.cols(), w.bits(), x.bits(),
                         dev, opts.tlp_threshold)
               .tile;
  } else {
    assign_warp_grid(tile);
  }
  res.tile = tile;
  BatchedGeometry g = internal::make_geometry(w, x, tile);
  g.micro = opts.micro;
  g.combine_fast = opts.combine_fast;
  g.pool = opts.pool;
  g.sparsity = opts.sparsity_stats;

  // --- Launch records -------------------------------------------------
  if (opts.collect_profile) {
    ApmmOptions resolved = opts;
    resolved.autotune = false;
    resolved.tile = tile;
    res.profile = apmm_profile(w.rows(), x.rows(), w.cols(), w.bits(),
                               x.bits(), {w.encoding, x.encoding}, dev,
                               resolved, epi);
  }

  // --- Functional execution -------------------------------------------
  if (opts.mode == ExecMode::kFull) {
    Tensor<std::int32_t>* y = &res.y;
    bitops::BitPlanes* packed = &res.packed;
    if (epi.has_quant) {
      if (opts.packed_out != nullptr) packed = opts.packed_out;
      packed->reset_shape(g.n, g.m, epi.quant.bits);
    } else {
      if (opts.y_out != nullptr) y = opts.y_out;
      y->reset_shape({g.m, g.n});
    }
    internal::run_batched_compute(w, x, sel, g, epi, y, packed);
  }
  return res;
}

tcsim::SequenceProfile apmm_profile(std::int64_t m, std::int64_t n,
                                    std::int64_t k, int p, int q,
                                    const EncodingConfig& enc,
                                    const tcsim::DeviceSpec& dev,
                                    const ApmmOptions& opts,
                                    const Epilogue& epi) {
  const OpSelection sel = select_operator(enc);
  TileConfig tile = opts.tile;
  if (opts.autotune) {
    tile = autotune_tile(m, n, k, p, q, dev, opts.tlp_threshold).tile;
  } else {
    assign_warp_grid(tile);
  }
  const BatchedGeometry g = internal::make_geometry(m, n, k, p, q, tile);
  const std::string name = kernel_name(p, q);

  tcsim::SequenceProfile seq;
  if (opts.batch_planes) {
    seq.add(internal::batched_profile(g, sel, opts, epi, name));
    if (!opts.semantic_aware) {
      seq.add(internal::combine_kernel_profile(g, epi));
    }
    return seq;
  }

  // Naive strategy (§4.1): one independent BMMA launch per (s, t) plane
  // pair, each writing its partial matrix to global memory, then a separate
  // combination kernel.
  TileConfig bt = opts.tile;
  if (opts.autotune) {
    bt = autotune_tile(m, n, k, 1, 1, dev, opts.tlp_threshold).tile;
  } else {
    assign_warp_grid(bt);
  }
  for (int s = 0; s < p; ++s) {
    for (int t = 0; t < q; ++t) {
      tcsim::KernelProfile kp;
      kp.name =
          name + "-bmma(" + std::to_string(s) + "," + std::to_string(t) + ")";
      kp.family = "apnn";
      const std::int64_t gm = ceil_div(g.m, bt.bm);
      const std::int64_t gn = ceil_div(g.n, bt.bn);
      kp.grid_blocks = gm * gn;
      kp.threads_per_block = bt.warps_per_block() * 32;
      kp.shmem_per_block = bt.shmem_bytes();
      kp.ci = compute_intensity(bt);
      auto& c = kp.counters;
      c.kernel_launches = 1;
      const std::int64_t tile_bytes =
          static_cast<std::int64_t>(bt.bm + bt.bn) * bt.bk / 8;
      c.global_load_bytes += kp.grid_blocks * g.ktiles * tile_bytes;
      c.shared_store_bytes += kp.grid_blocks * g.ktiles * tile_bytes;
      c.shared_load_bytes += kp.grid_blocks * g.ktiles * tile_bytes;
      c.bmma_b1 += kp.grid_blocks * g.ktiles * (round_up(bt.bm, 8) / 8) *
                   (round_up(bt.bn, 8) / 8);
      if (sel.kind == EmulationCase::kCaseIII && s == 0) {
        c.alu_combine_ops += g.n * g.row_words;
      }
      c.global_store_bytes += g.m * g.n * 4;  // partial matrix
      seq.add(std::move(kp));
    }
  }
  seq.add(internal::combine_kernel_profile(g, epi));
  return seq;
}

tcsim::KernelProfile decompose_profile(std::int64_t rows, std::int64_t cols,
                                       int bits, double elem_bytes) {
  tcsim::KernelProfile prof;
  prof.name = "bit-decompose";
  prof.family = "apnn";
  prof.grid_blocks = (rows * cols + 4095) / 4096;
  prof.threads_per_block = 256;
  prof.ci = 0;
  auto& c = prof.counters;
  c.kernel_launches = 1;
  c.global_load_bytes = static_cast<std::int64_t>(
      static_cast<double>(rows * cols) * elem_bytes);
  c.global_store_bytes = rows * cols * bits / 8;
  c.alu_decompose_ops = rows * cols * bits * 2;
  return prof;
}

}  // namespace apnn::core

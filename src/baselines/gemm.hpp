// CUTLASS / cuBLAS-like baseline GEMM kernels on the simulated device.
//
// The paper compares APMM against NVIDIA's int1/int4 CUTLASS kernels and the
// int8 cuBLAS kernel (§6.1.1). We reproduce the baselines' *kernel
// structure* — standard large-tile tensor-core GEMMs with shared-memory
// staging — on the same substrate, so the comparison measures exactly what
// the paper measures: emulated int1 arithmetic + APNN tiling vs native
// higher-precision arithmetic + conventional tiling.
//
// Profiles are cheap (counter formulas); functional variants (used by the
// test suite) run the actual MMA tile emulation.
#pragma once

#include <cstdint>

#include "src/layout/tensor.hpp"
#include "src/tcsim/device_spec.hpp"
#include "src/tcsim/half.hpp"
#include "src/tcsim/kernel.hpp"

namespace apnn::baselines {

/// Standard CUTLASS-style block tile for a precision (threadblock shape and
/// k-depth chosen per the library's default sub-byte / integer configs).
struct BaselineTile {
  std::int64_t tm = 128, tn = 128, tk = 64;
};
BaselineTile baseline_tile(tcsim::Precision p);

/// Launch profile of a cutlass-like GEMM: C(MxN,int32) = A(MxK) * B(NxK)^T.
tcsim::KernelProfile cutlass_gemm_profile(tcsim::Precision prec,
                                          std::int64_t m, std::int64_t n,
                                          std::int64_t k);

/// Launch profile of the cublas int8 GEMM (identical structure, different
/// efficiency family — cublas tunes less aggressively for small shapes).
tcsim::KernelProfile cublas_gemm_int8_profile(std::int64_t m, std::int64_t n,
                                              std::int64_t k);

/// GEMM profile with an explicit tile (used by the implicit-GEMM conv
/// baseline, whose default threadblock shape differs from the GEMM one).
tcsim::KernelProfile cutlass_gemm_profile_tiled(tcsim::Precision prec,
                                                std::int64_t m,
                                                std::int64_t n,
                                                std::int64_t k,
                                                const BaselineTile& tile,
                                                const std::string& name,
                                                const std::string& family);

// --- Functional kernels (tests / examples) ---------------------------------

/// int8 tensor-core GEMM via imma 16x16x16 tiles. a is M x K, b is N x K.
Tensor<std::int32_t> gemm_int8(const Tensor<std::int8_t>& a,
                               const Tensor<std::int8_t>& b);

/// int4 tensor-core GEMM via imma 8x8x32 tiles (operands stored as int8
/// values in [-8, 7]).
Tensor<std::int32_t> gemm_int4(const Tensor<std::int8_t>& a,
                               const Tensor<std::int8_t>& b);

/// fp16 tensor-core GEMM via hmma 16x16x16 tiles, fp32 accumulate.
Tensor<float> gemm_fp16(const Tensor<tcsim::half_t>& a,
                        const Tensor<tcsim::half_t>& b);

/// fp32 CUDA-core GEMM (plain FMA loops).
Tensor<float> gemm_fp32(const Tensor<float>& a, const Tensor<float>& b);

}  // namespace apnn::baselines

// BSTC / BTC-style binary-neural-network baseline (Li et al., the paper's
// "state-of-the-art BNN on Tensor Cores" comparison, §6.2).
//
// These existing designs differ from APNN-TC exactly where the paper says
// they do (§4.1a, §4.2): small fixed 32x32 block tiles (good TLP, poor CI),
// no collaborative double caching (each warp loads its own tiles), and
// direct convolution without the channel-major patch reuse. Functionally
// they compute the ±1 XOR GEMM (Case II).
#pragma once

#include <cstdint>

#include "src/bitops/bit_matrix.hpp"
#include "src/layout/im2col.hpp"
#include "src/layout/tensor.hpp"
#include "src/tcsim/kernel.hpp"

namespace apnn::baselines {

/// Launch profile of the BSTC-like 1-bit GEMM (M x N x K over ±1 operands).
tcsim::KernelProfile bnn_gemm_profile(std::int64_t m, std::int64_t n,
                                      std::int64_t k);

/// Launch profile of the BTC-like direct 1-bit convolution.
tcsim::KernelProfile bnn_conv_profile(const layout::ConvGeometry& g);

/// Functional ±1 GEMM: operands are bit matrices (bit 1 = +1, bit 0 = -1),
/// result the integer dot products (XOR + popc, dot = k - 2*popc).
Tensor<std::int32_t> bnn_gemm(const bitops::BitMatrix& w,
                              const bitops::BitMatrix& x);

}  // namespace apnn::baselines

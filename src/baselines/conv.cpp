#include "src/baselines/conv.hpp"

#include "src/baselines/gemm.hpp"
#include "src/common/check.hpp"

namespace apnn::baselines {

tcsim::KernelProfile cutlass_conv_profile(tcsim::Precision prec,
                                          const layout::ConvGeometry& g) {
  // Implicit GEMM over the lowered problem size. CUTLASS's fprop configs
  // default to a narrower 128x64 threadblock than the GEMM path (conv N
  // extents are spatial and often small).
  BaselineTile tile = baseline_tile(prec);
  tile.tn = 64;
  return cutlass_gemm_profile_tiled(
      prec, g.gemm_m(), g.gemm_n(), g.gemm_k(), tile,
      std::string("cutlass-conv-") + tcsim::precision_name(prec),
      prec == tcsim::Precision::kInt1 ? "cutlass-conv-int1" : "cutlass-conv");
}

Tensor<std::int32_t> conv_int8(const Tensor<std::int8_t>& x_nhwc,
                               const Tensor<std::int8_t>& w_ohwi,
                               const layout::ConvGeometry& g) {
  const Tensor<std::int8_t> patches =
      layout::im2col_dense<std::int8_t>(x_nhwc, g, 0);
  const Tensor<std::int8_t> wflat = w_ohwi.reshaped(
      {w_ohwi.dim(0), w_ohwi.dim(1) * w_ohwi.dim(2) * w_ohwi.dim(3)});
  // gemm: (Cout x K) * (NOHOW x K)^T -> Cout x NOHOW, then to NHWC.
  const Tensor<std::int32_t> y = gemm_int8(wflat, patches);
  Tensor<std::int32_t> out({g.batch, g.out_h(), g.out_w(), g.out_c});
  const std::int64_t spatial = g.batch * g.out_h() * g.out_w();
  for (std::int64_t m = 0; m < g.out_c; ++m) {
    for (std::int64_t col = 0; col < spatial; ++col) {
      out[col * g.out_c + m] = y(m, col);
    }
  }
  return out;
}

Tensor<float> conv_fp32(const Tensor<float>& x_nhwc,
                        const Tensor<float>& w_ohwi,
                        const layout::ConvGeometry& g) {
  APNN_CHECK(x_nhwc.rank() == 4 && w_ohwi.rank() == 4);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor<float> y({g.batch, oh, ow, g.out_c});
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        for (std::int64_t m = 0; m < g.out_c; ++m) {
          float acc = 0.f;
          for (int kh = 0; kh < g.kernel; ++kh) {
            for (int kw = 0; kw < g.kernel; ++kw) {
              const std::int64_t ih = oy * g.stride + kh - g.pad;
              const std::int64_t iw = ox * g.stride + kw - g.pad;
              if (ih < 0 || ih >= g.in_h || iw < 0 || iw >= g.in_w) continue;
              for (std::int64_t c = 0; c < g.in_c; ++c) {
                acc += x_nhwc(n, ih, iw, c) * w_ohwi(m, kh, kw, c);
              }
            }
          }
          y(n, oy, ox, m) = acc;
        }
      }
    }
  }
  return y;
}

}  // namespace apnn::baselines

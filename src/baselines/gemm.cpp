#include "src/baselines/gemm.hpp"

#include <algorithm>
#include <vector>

#include "src/common/check.hpp"
#include "src/tcsim/mma.hpp"
#include "src/tcsim/precision.hpp"

namespace apnn::baselines {

namespace {

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// MMA tile issues for one block k-slice, per precision.
std::int64_t mma_tiles_per_block(tcsim::Precision p, const BaselineTile& t) {
  switch (p) {
    case tcsim::Precision::kInt1:
      return (t.tm / 8) * (t.tn / 8) * (t.tk / 128);
    case tcsim::Precision::kInt4:
      return (t.tm / 8) * (t.tn / 8) * (t.tk / 32);
    case tcsim::Precision::kInt8:
    case tcsim::Precision::kFp16:
      return (t.tm / 16) * (t.tn / 16) * (t.tk / 16);
    case tcsim::Precision::kFp32:
      return 0;  // CUDA cores: counted as FMAs
  }
  return 0;
}

tcsim::KernelProfile gemm_profile_impl(tcsim::Precision prec, std::int64_t m,
                                       std::int64_t n, std::int64_t k,
                                       const BaselineTile& t,
                                       const std::string& name,
                                       const std::string& family) {
  tcsim::KernelProfile prof;
  prof.name = name;
  prof.family = family;
  const std::int64_t gm = ceil_div(m, t.tm), gn = ceil_div(n, t.tn);
  prof.grid_blocks = gm * gn;
  prof.threads_per_block = 256;
  prof.ci = 2.0 * static_cast<double>(t.tm) * static_cast<double>(t.tn) /
            static_cast<double>(t.tm + t.tn);
  const double ebytes = tcsim::precision_bytes(prec);
  prof.shmem_per_block = static_cast<std::int64_t>(
      2.0 * static_cast<double>(t.tm + t.tn) * static_cast<double>(t.tk) *
      ebytes);
  auto& c = prof.counters;
  c.kernel_launches = 1;
  const std::int64_t ktiles = ceil_div(k, t.tk);
  const std::int64_t tile_bytes = static_cast<std::int64_t>(
      static_cast<double>(t.tm + t.tn) * static_cast<double>(t.tk) * ebytes);
  c.global_load_bytes += prof.grid_blocks * ktiles * tile_bytes;
  c.shared_store_bytes += prof.grid_blocks * ktiles * tile_bytes;
  c.shared_load_bytes += prof.grid_blocks * ktiles * tile_bytes;
  const std::int64_t mma = prof.grid_blocks * ktiles * mma_tiles_per_block(prec, t);
  switch (prec) {
    case tcsim::Precision::kInt1: c.bmma_b1 += mma; break;
    case tcsim::Precision::kInt4: c.mma_i4 += mma; break;
    case tcsim::Precision::kInt8: c.mma_i8 += mma; break;
    case tcsim::Precision::kFp16: c.mma_f16 += mma; break;
    case tcsim::Precision::kFp32:
      c.fma_f32 += prof.grid_blocks * ktiles * t.tm * t.tn * t.tk;
      break;
  }
  c.global_store_bytes += m * n * 4;  // 32-bit outputs (paper §6.1.1)
  return prof;
}

}  // namespace

BaselineTile baseline_tile(tcsim::Precision p) {
  switch (p) {
    case tcsim::Precision::kInt1: return {128, 128, 512};
    case tcsim::Precision::kInt4: return {128, 128, 128};
    case tcsim::Precision::kInt8: return {128, 128, 64};
    case tcsim::Precision::kFp16: return {128, 128, 32};
    case tcsim::Precision::kFp32: return {128, 128, 8};
  }
  return {};
}

tcsim::KernelProfile cutlass_gemm_profile(tcsim::Precision prec,
                                          std::int64_t m, std::int64_t n,
                                          std::int64_t k) {
  const std::string pname = tcsim::precision_name(prec);
  const std::string family = prec == tcsim::Precision::kInt1
                                 ? "cutlass-gemm-int1"
                                 : "cutlass-gemm";
  return gemm_profile_impl(prec, m, n, k, baseline_tile(prec),
                           "cutlass-gemm-" + pname, family);
}

tcsim::KernelProfile cublas_gemm_int8_profile(std::int64_t m, std::int64_t n,
                                              std::int64_t k) {
  return gemm_profile_impl(tcsim::Precision::kInt8, m, n, k,
                           baseline_tile(tcsim::Precision::kInt8),
                           "cublas-gemm-int8", "cublas-gemm");
}

tcsim::KernelProfile cutlass_gemm_profile_tiled(tcsim::Precision prec,
                                                std::int64_t m,
                                                std::int64_t n,
                                                std::int64_t k,
                                                const BaselineTile& tile,
                                                const std::string& name,
                                                const std::string& family) {
  return gemm_profile_impl(prec, m, n, k, tile, name, family);
}

// --- Functional kernels -----------------------------------------------------

namespace {

/// Pads an R x C int8 matrix to tile multiples (rows_to, cols_to).
std::vector<std::int8_t> pad_i8(const Tensor<std::int8_t>& m,
                                std::int64_t rows_to, std::int64_t cols_to) {
  std::vector<std::int8_t> out(
      static_cast<std::size_t>(rows_to * cols_to), 0);
  for (std::int64_t r = 0; r < m.dim(0); ++r) {
    for (std::int64_t c = 0; c < m.dim(1); ++c) {
      out[static_cast<std::size_t>(r * cols_to + c)] = m(r, c);
    }
  }
  return out;
}

}  // namespace

Tensor<std::int32_t> gemm_int8(const Tensor<std::int8_t>& a,
                               const Tensor<std::int8_t>& b) {
  APNN_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1));
  const std::int64_t m = a.dim(0), n = b.dim(0), k = a.dim(1);
  const std::int64_t m16 = ceil_div(m, 16) * 16, n16 = ceil_div(n, 16) * 16,
                     k16 = ceil_div(k, 16) * 16;
  const auto ap = pad_i8(a, m16, k16);
  const auto bp = pad_i8(b, n16, k16);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(m16 * n16), 0);
  for (std::int64_t i = 0; i < m16; i += 16) {
    for (std::int64_t j = 0; j < n16; j += 16) {
      std::int32_t tile[256] = {0};
      for (std::int64_t kk = 0; kk < k16; kk += 16) {
        tcsim::imma_16x16x16(&ap[static_cast<std::size_t>(i * k16 + kk)], k16,
                             &bp[static_cast<std::size_t>(j * k16 + kk)], k16,
                             tile);
      }
      for (int di = 0; di < 16; ++di) {
        for (int dj = 0; dj < 16; ++dj) {
          acc[static_cast<std::size_t>((i + di) * n16 + (j + dj))] =
              tile[di * 16 + dj];
        }
      }
    }
  }
  Tensor<std::int32_t> y({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      y(i, j) = acc[static_cast<std::size_t>(i * n16 + j)];
    }
  }
  return y;
}

Tensor<std::int32_t> gemm_int4(const Tensor<std::int8_t>& a,
                               const Tensor<std::int8_t>& b) {
  APNN_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1));
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    APNN_DCHECK(a[i] >= -8 && a[i] <= 7) << "int4 range";
  }
  const std::int64_t m = a.dim(0), n = b.dim(0), k = a.dim(1);
  const std::int64_t m8 = ceil_div(m, 8) * 8, n8 = ceil_div(n, 8) * 8,
                     k32 = ceil_div(k, 32) * 32;
  const auto ap = pad_i8(a, m8, k32);
  const auto bp = pad_i8(b, n8, k32);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(m8 * n8), 0);
  for (std::int64_t i = 0; i < m8; i += 8) {
    for (std::int64_t j = 0; j < n8; j += 8) {
      std::int32_t tile[64] = {0};
      for (std::int64_t kk = 0; kk < k32; kk += 32) {
        tcsim::imma_8x8x32(&ap[static_cast<std::size_t>(i * k32 + kk)], k32,
                           &bp[static_cast<std::size_t>(j * k32 + kk)], k32,
                           tile);
      }
      for (int di = 0; di < 8; ++di) {
        for (int dj = 0; dj < 8; ++dj) {
          acc[static_cast<std::size_t>((i + di) * n8 + (j + dj))] =
              tile[di * 8 + dj];
        }
      }
    }
  }
  Tensor<std::int32_t> y({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      y(i, j) = acc[static_cast<std::size_t>(i * n8 + j)];
    }
  }
  return y;
}

Tensor<float> gemm_fp16(const Tensor<tcsim::half_t>& a,
                        const Tensor<tcsim::half_t>& b) {
  APNN_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1));
  const std::int64_t m = a.dim(0), n = b.dim(0), k = a.dim(1);
  const std::int64_t m16 = ceil_div(m, 16) * 16, n16 = ceil_div(n, 16) * 16,
                     k16 = ceil_div(k, 16) * 16;
  std::vector<tcsim::half_t> ap(static_cast<std::size_t>(m16 * k16));
  std::vector<tcsim::half_t> bp(static_cast<std::size_t>(n16 * k16));
  for (std::int64_t r = 0; r < m; ++r)
    for (std::int64_t c = 0; c < k; ++c)
      ap[static_cast<std::size_t>(r * k16 + c)] = a(r, c);
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < k; ++c)
      bp[static_cast<std::size_t>(r * k16 + c)] = b(r, c);
  std::vector<float> acc(static_cast<std::size_t>(m16 * n16), 0.f);
  for (std::int64_t i = 0; i < m16; i += 16) {
    for (std::int64_t j = 0; j < n16; j += 16) {
      float tile[256] = {0.f};
      for (std::int64_t kk = 0; kk < k16; kk += 16) {
        tcsim::hmma_16x16x16(&ap[static_cast<std::size_t>(i * k16 + kk)], k16,
                             &bp[static_cast<std::size_t>(j * k16 + kk)], k16,
                             tile);
      }
      for (int di = 0; di < 16; ++di) {
        for (int dj = 0; dj < 16; ++dj) {
          acc[static_cast<std::size_t>((i + di) * n16 + (j + dj))] =
              tile[di * 16 + dj];
        }
      }
    }
  }
  Tensor<float> y({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      y(i, j) = acc[static_cast<std::size_t>(i * n16 + j)];
    }
  }
  return y;
}

Tensor<float> gemm_fp32(const Tensor<float>& a, const Tensor<float>& b) {
  APNN_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1));
  const std::int64_t m = a.dim(0), n = b.dim(0), k = a.dim(1);
  Tensor<float> y({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a(i, kk) * b(j, kk);
      y(i, j) = acc;
    }
  }
  return y;
}

}  // namespace apnn::baselines

// CUTLASS-like baseline convolution (implicit GEMM) on the simulated device.
//
// The paper's conv baselines (cutlass-conv-int1/int4/int8, §6.1.2) are
// implicit-GEMM tensor-core kernels: the convolution is tiled exactly like a
// GEMM of size Cout x (N*OH*OW) x (KH*KW*Cin), with activation tiles
// gathered from the feature map on the fly.
#pragma once

#include <cstdint>

#include "src/layout/im2col.hpp"
#include "src/layout/tensor.hpp"
#include "src/tcsim/kernel.hpp"
#include "src/tcsim/precision.hpp"

namespace apnn::baselines {

/// Launch profile of a cutlass-like implicit-GEMM convolution.
tcsim::KernelProfile cutlass_conv_profile(tcsim::Precision prec,
                                          const layout::ConvGeometry& g);

/// Functional int8 convolution (im2col + int8 tensor-core GEMM); x is NHWC
/// logical, w is OHWI. Used by tests to validate the lowering path.
Tensor<std::int32_t> conv_int8(const Tensor<std::int8_t>& x_nhwc,
                               const Tensor<std::int8_t>& w_ohwi,
                               const layout::ConvGeometry& g);

/// Functional fp32 convolution (direct loops) — the float reference the NN
/// framework validates against.
Tensor<float> conv_fp32(const Tensor<float>& x_nhwc,
                        const Tensor<float>& w_ohwi,
                        const layout::ConvGeometry& g);

}  // namespace apnn::baselines

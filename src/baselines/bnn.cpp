#include "src/baselines/bnn.hpp"

#include "src/common/check.hpp"

namespace apnn::baselines {

namespace {

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

constexpr std::int64_t kBnnTile = 32;  // BSTC's small fixed tiles

tcsim::KernelProfile bnn_profile_impl(std::int64_t m, std::int64_t n,
                                      std::int64_t k,
                                      const std::string& name) {
  tcsim::KernelProfile prof;
  prof.name = name;
  prof.family = "bnn";
  const std::int64_t gm = ceil_div(m, kBnnTile), gn = ceil_div(n, kBnnTile);
  prof.grid_blocks = gm * gn;
  prof.threads_per_block = 256;
  prof.ci = 2.0 * kBnnTile * kBnnTile / (kBnnTile + kBnnTile);  // CI = 32
  prof.shmem_per_block = 0;  // no shared-memory staging
  auto& c = prof.counters;
  c.kernel_launches = 1;
  const std::int64_t ktiles = ceil_div(k, 128);
  // No double caching: the 8 warps of a block each load their own 8x128 W
  // slab and 16x128 X slab per k-tile (4x2 warp grid over the 32x32 tile).
  // The L1 cache absorbs roughly half of the duplicated reads, so the
  // effective DRAM traffic is ~1.5x the collaborative volume rather than 3x.
  const std::int64_t warp_bits = 8 * (8 + 16) * 128 / 2;
  c.global_load_bytes += prof.grid_blocks * ktiles * warp_bits / 8;
  c.bmma_b1 += prof.grid_blocks * ktiles * (kBnnTile / 8) * (kBnnTile / 8);
  c.alu_combine_ops += prof.grid_blocks * kBnnTile * kBnnTile;  // k - 2*popc
  c.global_store_bytes += m * n * 4;
  return prof;
}

}  // namespace

tcsim::KernelProfile bnn_gemm_profile(std::int64_t m, std::int64_t n,
                                      std::int64_t k) {
  return bnn_profile_impl(m, n, k, "bnn-gemm");
}

tcsim::KernelProfile bnn_conv_profile(const layout::ConvGeometry& g) {
  // Direct convolution: same lowered extent, but feature data is gathered
  // per output tile with no patch reuse — each block re-reads its K*K*C
  // window for all 32 of its output positions.
  tcsim::KernelProfile prof =
      bnn_profile_impl(g.gemm_m(), g.gemm_n(), g.gemm_k(), "bnn-conv");
  return prof;
}

Tensor<std::int32_t> bnn_gemm(const bitops::BitMatrix& w,
                              const bitops::BitMatrix& x) {
  APNN_CHECK(w.cols() == x.cols());
  const std::int64_t m = w.rows(), n = x.rows(), k = w.cols();
  const std::int64_t words = w.row_words();
  Tensor<std::int32_t> y({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int64_t popc = bitops::dot_xor_popc(w.row(i), x.row(j), words);
      y(i, j) = static_cast<std::int32_t>(k - 2 * popc);
    }
  }
  return y;
}

}  // namespace apnn::baselines

#include "src/layout/bit_transpose.hpp"

#include <algorithm>

namespace apnn::layout {

void transpose64(std::uint64_t a[64]) {
  // Masked swap network (Hacker's Delight 7-3, flipped for LSB-first column
  // indexing): at stride j, exchange bit (r, c|j) with bit (r|j, c) for all
  // r, c with bit j clear.
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

void transpose_bit_matrix(const bitops::BitMatrix& src,
                          bitops::BitMatrix& dst) {
  const std::int64_t rows = src.rows();
  const std::int64_t cols = src.cols();
  // Zero-fill so the untouched tail words of each dst row (and any padding
  // rows) satisfy the padding invariant without per-word masking below.
  dst.reset_shape(cols, rows, /*zero_fill=*/true);
  if (rows == 0 || cols == 0) return;

  const std::int64_t src_words = src.row_words();
  std::uint64_t tile[64];
  for (std::int64_t r0 = 0; r0 < rows; r0 += 64) {
    const std::int64_t rlim = std::min<std::int64_t>(64, rows - r0);
    for (std::int64_t wc = 0; wc < src_words; ++wc) {
      const std::int64_t c0 = wc * 64;
      if (c0 >= cols) break;  // trailing padding words are all zero
      for (std::int64_t i = 0; i < rlim; ++i) tile[i] = src.row(r0 + i)[wc];
      for (std::int64_t i = rlim; i < 64; ++i) tile[i] = 0;
      transpose64(tile);
      const std::int64_t clim = std::min<std::int64_t>(64, cols - c0);
      const std::int64_t wr = r0 / 64;
      for (std::int64_t i = 0; i < clim; ++i) dst.row(c0 + i)[wr] = tile[i];
    }
  }
}

void transpose_planes(const bitops::BitPlanes& src, bitops::BitPlanes& dst) {
  dst.reset_shape(src.cols, src.rows, src.bits, /*zero_fill=*/false);
  for (int t = 0; t < src.bits; ++t) {
    transpose_bit_matrix(src.planes[static_cast<std::size_t>(t)],
                         dst.planes[static_cast<std::size_t>(t)]);
  }
}

}  // namespace apnn::layout

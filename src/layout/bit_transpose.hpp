// Word-granular bit-matrix transpose.
//
// The attention AV stage needs V^T as a bit-GEMM operand: apmm contracts
// both operands along their column (K) dimension, so the seq x d_head value
// planes must become d_head x seq operand planes. Doing that bit-by-bit is
// O(seq * d_head) BitMatrix::get/set round trips (the nlp_attention example
// used to do exactly that); this kernel moves 64x64 bit tiles with the
// classic masked swap network instead, touching each 64-bit word O(log 64)
// times.
#pragma once

#include "src/bitops/bit_matrix.hpp"
#include "src/bitops/decompose.hpp"

namespace apnn::layout {

/// In-place transpose of a 64x64 bit tile. a[r] bit c (LSB-first column
/// indexing) moves to a[c] bit r.
void transpose64(std::uint64_t a[64]);

/// dst = src^T. dst is reshaped to (src.cols x src.rows); the BitMatrix
/// padding invariant (all bits past `cols` zero) is preserved.
void transpose_bit_matrix(const bitops::BitMatrix& src, bitops::BitMatrix& dst);

/// Transposes every plane of a packed multi-bit operand: dst becomes
/// (src.cols x src.rows) with the same bit count.
void transpose_planes(const bitops::BitPlanes& src, bitops::BitPlanes& dst);

}  // namespace apnn::layout

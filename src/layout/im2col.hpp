// Convolution lowering (im2col) for packed bit planes and dense tensors.
//
// APConv computes a p-bit x q-bit convolution as an emulated GEMM over
// patch matrices: for each 1-bit activation plane, the (N*OH*OW) x (K*K*C)
// patch matrix is assembled from the channel-major layout; each (kh, kw)
// tap contributes one contiguous C-bit slab, which is what makes the
// access coalesced (§4.2a). Out-of-image taps are filled with the padding
// bit selected by the input-aware padding design (§4.2b).
#pragma once

#include <cstdint>

#include "src/bitops/bit_matrix.hpp"
#include "src/core/microkernel.hpp"
#include "src/layout/packed_activations.hpp"
#include "src/layout/tensor.hpp"

namespace apnn {
class ThreadPool;
}  // namespace apnn

namespace apnn::layout {

/// Static geometry of a 2D convolution.
struct ConvGeometry {
  std::int64_t batch = 1;
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t out_c = 0;
  int kernel = 3;
  int stride = 1;
  int pad = 1;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  /// GEMM dims of the lowered convolution: M x N x K.
  std::int64_t gemm_m() const { return out_c; }
  std::int64_t gemm_n() const { return batch * out_h() * out_w(); }
  std::int64_t gemm_k() const {
    return static_cast<std::int64_t>(kernel) * kernel * in_c;
  }
  /// Multiply-accumulates of the direct convolution.
  std::int64_t macs() const { return gemm_m() * gemm_n() * gemm_k(); }
};

/// Lowers one 1-bit activation plane (rows = N*H*W, cols = C, channel-major)
/// to the patch matrix (rows = N*OH*OW, cols = K*K*C). `pad_value` is the
/// bit written at out-of-image taps (input-aware padding). `pool` is the
/// pool the row loop runs on; nullptr = ThreadPool::global().
bitops::BitMatrix im2col_bits(const bitops::BitMatrix& plane,
                              const ConvGeometry& g, bool pad_value,
                              ThreadPool* pool = nullptr);

/// An output position of the lowered convolution.
struct OutPos {
  std::int64_t n = 0, oy = 0, ox = 0;
};

/// Maps GEMM column `col` to its output position. `pool_win` selects the
/// column enumeration order: 1 is the natural (n, oy, ox) row-major order;
/// win > 1 enumerates pool-window-major — each run of win*win consecutive
/// columns is one complete win x win pooling window (window index
/// col / win², i.e. the pooled output position), which is what lets the
/// fused conv tail reduce a pooling window entirely inside one block.
/// Requires out_h % win == 0 and out_w % win == 0.
OutPos conv_col_position(const ConvGeometry& g, std::int64_t col,
                         int pool_win);

/// PanelSource assembling convolution patch rows on the fly from the packed
/// channel-major feature-map planes — the im2col-free staging of §4.2: no
/// gemm_n x gemm_k patch matrix ever exists; each k-strip of each virtual B
/// row is gathered directly into the staged panel (stride/pad window walk,
/// §4.2b input-aware padding included).
///
/// Virtual row j covers plane (j % q) of GEMM column col0 + j / q under the
/// `pool_win` column order; rows >= nvalid and columns >= gemm_n stage as
/// zeros (the virtual padding of non-tile-aligned block edges).
class WindowGatherSource final : public core::microkernel::PanelSource {
 public:
  WindowGatherSource(const PackedActivations& x, const ConvGeometry& g,
                     bool pad_one, int pool_win, std::int64_t col0,
                     std::int64_t nrows8, std::int64_t nvalid);

  std::int64_t rows() const override { return nrows8_; }
  void stage(std::int64_t w0, std::int64_t words,
             std::uint64_t* panel) const override;
  /// Word-interleaved staging without the row-major scratch round trip:
  /// each patch row is gathered into a strip-sized local buffer and
  /// scattered straight into the interleaved panel.
  void stage_transposed(std::int64_t w0, std::int64_t words,
                        std::uint64_t* panel,
                        std::uint64_t* scratch) const override;
  /// Occupancy-building variant: the zero-word test is folded into the
  /// scatter from the per-row gather buffer (no second pass over the
  /// interleaved panel, which the base-class default would need).
  std::int64_t stage_transposed_occ(std::int64_t w0, std::int64_t words,
                                    std::uint64_t* panel,
                                    std::uint64_t* scratch,
                                    std::uint64_t* occ) const override;
  bool direct_transpose() const override { return true; }

 private:
  /// Assembles bits [w0*64, w0*64 + words*64) of column `col`'s patch row
  /// for plane `t` into dst (pre-zeroed).
  void gather_row(std::int64_t col, int t, std::int64_t w0,
                  std::int64_t words, std::uint64_t* dst) const;

  const PackedActivations* x_;
  const ConvGeometry* g_;
  bool pad_one_;
  int win_;
  std::int64_t col0_, nrows8_, nvalid_;
  std::int64_t gemm_n_, gemm_k_;
};

/// Dense im2col for baseline kernels: src is NHWC ({N, H, W, C}); output is
/// {N*OH*OW, K*K*C}. Out-of-image taps read `pad_value`.
template <typename T>
Tensor<T> im2col_dense(const Tensor<T>& src, const ConvGeometry& g,
                       T pad_value = T{}) {
  APNN_CHECK(src.rank() == 4);
  APNN_CHECK(src.dim(0) == g.batch && src.dim(1) == g.in_h &&
             src.dim(2) == g.in_w && src.dim(3) == g.in_c)
      << "input shape mismatch";
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor<T> out({g.batch * oh * ow, g.gemm_k()});
  std::int64_t row = 0;
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x, ++row) {
        std::int64_t col = 0;
        for (int kh = 0; kh < g.kernel; ++kh) {
          for (int kw = 0; kw < g.kernel; ++kw) {
            const std::int64_t ih = y * g.stride + kh - g.pad;
            const std::int64_t iw = x * g.stride + kw - g.pad;
            for (std::int64_t c = 0; c < g.in_c; ++c, ++col) {
              out(row, col) = (ih >= 0 && ih < g.in_h && iw >= 0 && iw < g.in_w)
                                  ? src(n, ih, iw, c)
                                  : pad_value;
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace apnn::layout

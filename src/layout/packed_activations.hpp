// Channel-major packed activation tensors (the paper's NPHWC layout, §4.2a).
//
// A q-bit activation tensor of shape N x H x W x C is stored as q 1-bit
// planes (P = q outermost), each plane a BitMatrix with one row per spatial
// position (n, h, w) and C channel bits per row. Two properties the paper
// requires hold by construction:
//   * each 1-bit plane is stored consecutively (aligned access for any P);
//   * all channels of one spatial position are contiguous (coalesced reads
//     of C-bit slabs during convolution).
#pragma once

#include <cstdint>
#include <vector>

#include "src/bitops/bit_matrix.hpp"
#include "src/layout/tensor.hpp"

namespace apnn::layout {

/// Dense activation layouts supported by conversion helpers.
enum class DenseLayout { kNCHW, kNHWC };

struct PackedActivations {
  std::int64_t n = 0, h = 0, w = 0, c = 0;
  int bits = 0;
  /// planes[t]: rows = n*h*w, cols = c; bit = (value >> t) & 1.
  std::vector<bitops::BitMatrix> planes;

  std::int64_t spatial_rows() const { return n * h * w; }

  /// Bytes that cross the simulated bus when this tensor moves (the
  /// minimal-traffic dataflow of §5.1 moves exactly these). Only the active
  /// `bits` planes count: a slab-recycled tensor may retain spare trailing
  /// matrices from a wider previous occupant (see reset_shape).
  std::int64_t payload_bytes() const {
    std::int64_t total = 0;
    for (int t = 0; t < bits; ++t) {
      total += planes[static_cast<std::size_t>(t)].payload_bytes();
    }
    return total;
  }

  /// Reshapes in place, reusing existing plane storage whenever capacity
  /// suffices (zero steady-state allocations in the session slab). The
  /// planes vector never shrinks — planes beyond `bits` keep their buffers
  /// for a future wider occupant. `zero_fill` as in BitMatrix::reset_shape:
  /// pass false only when every padded word will be overwritten.
  void reset_shape(std::int64_t n_, std::int64_t h_, std::int64_t w_,
                   std::int64_t c_, int bits_, bool zero_fill = true) {
    n = n_;
    h = h_;
    w = w_;
    c = c_;
    bits = bits_;
    if (static_cast<int>(planes.size()) < bits) {
      planes.resize(static_cast<std::size_t>(bits));
    }
    for (int t = 0; t < bits; ++t) {
      planes[static_cast<std::size_t>(t)].reset_shape(spatial_rows(), c,
                                                      zero_fill);
    }
  }
};

/// Packs a dense non-negative q-bit tensor (values < 2^bits). `src` is
/// indexed per `layout`; shape is {N, C, H, W} for kNCHW or {N, H, W, C} for
/// kNHWC.
PackedActivations pack_activations(const Tensor<std::int32_t>& src,
                                   DenseLayout layout, int bits);

/// Unpacks to a dense NHWC tensor (shape {N, H, W, C}).
Tensor<std::int32_t> unpack_activations(const PackedActivations& packed);

/// NCHW -> NHWC for dense tensors (baseline kernels keep dense data).
template <typename T>
Tensor<T> nchw_to_nhwc(const Tensor<T>& src) {
  APNN_CHECK(src.rank() == 4);
  const std::int64_t n = src.dim(0), c = src.dim(1), h = src.dim(2),
                     w = src.dim(3);
  Tensor<T> out({n, h, w, c});
  for (std::int64_t in = 0; in < n; ++in)
    for (std::int64_t ic = 0; ic < c; ++ic)
      for (std::int64_t ih = 0; ih < h; ++ih)
        for (std::int64_t iw = 0; iw < w; ++iw)
          out(in, ih, iw, ic) = src(in, ic, ih, iw);
  return out;
}

/// NHWC -> NCHW for dense tensors.
template <typename T>
Tensor<T> nhwc_to_nchw(const Tensor<T>& src) {
  APNN_CHECK(src.rank() == 4);
  const std::int64_t n = src.dim(0), h = src.dim(1), w = src.dim(2),
                     c = src.dim(3);
  Tensor<T> out({n, c, h, w});
  for (std::int64_t in = 0; in < n; ++in)
    for (std::int64_t ih = 0; ih < h; ++ih)
      for (std::int64_t iw = 0; iw < w; ++iw)
        for (std::int64_t ic = 0; ic < c; ++ic)
          out(in, ic, ih, iw) = src(in, ih, iw, ic);
  return out;
}

}  // namespace apnn::layout

#include "src/layout/packed_activations.hpp"

namespace apnn::layout {

PackedActivations pack_activations(const Tensor<std::int32_t>& src,
                                   DenseLayout layout, int bits) {
  APNN_CHECK(src.rank() == 4);
  APNN_CHECK(bits >= 1 && bits <= 16) << "bits=" << bits;
  PackedActivations out;
  out.bits = bits;
  if (layout == DenseLayout::kNCHW) {
    out.n = src.dim(0);
    out.c = src.dim(1);
    out.h = src.dim(2);
    out.w = src.dim(3);
  } else {
    out.n = src.dim(0);
    out.h = src.dim(1);
    out.w = src.dim(2);
    out.c = src.dim(3);
  }
  out.planes.assign(static_cast<std::size_t>(bits),
                    bitops::BitMatrix(out.spatial_rows(), out.c));
  for (std::int64_t in = 0; in < out.n; ++in) {
    for (std::int64_t ih = 0; ih < out.h; ++ih) {
      for (std::int64_t iw = 0; iw < out.w; ++iw) {
        const std::int64_t row = (in * out.h + ih) * out.w + iw;
        for (std::int64_t ic = 0; ic < out.c; ++ic) {
          const std::int32_t v = layout == DenseLayout::kNCHW
                                     ? src(in, ic, ih, iw)
                                     : src(in, ih, iw, ic);
          APNN_DCHECK(v >= 0 && v < (1 << bits))
              << "activation " << v << " out of range for " << bits << " bits";
          for (int t = 0; t < bits; ++t) {
            if ((v >> t) & 1) {
              out.planes[static_cast<std::size_t>(t)].set(row, ic, true);
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor<std::int32_t> unpack_activations(const PackedActivations& packed) {
  Tensor<std::int32_t> out({packed.n, packed.h, packed.w, packed.c});
  for (std::int64_t row = 0; row < packed.spatial_rows(); ++row) {
    for (std::int64_t ic = 0; ic < packed.c; ++ic) {
      std::int32_t v = 0;
      for (int t = 0; t < packed.bits; ++t) {
        if (packed.planes[static_cast<std::size_t>(t)].get(row, ic)) {
          v |= 1 << t;
        }
      }
      out[row * packed.c + ic] = v;
    }
  }
  return out;
}

}  // namespace apnn::layout

#include "src/layout/im2col.hpp"

#include <algorithm>
#include <cstring>

#include "src/bitops/bitcopy.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn::layout {

bitops::BitMatrix im2col_bits(const bitops::BitMatrix& plane,
                              const ConvGeometry& g, bool pad_value,
                              ThreadPool* pool) {
  APNN_CHECK(plane.rows() == g.batch * g.in_h * g.in_w)
      << "plane rows " << plane.rows() << " vs geometry "
      << g.batch * g.in_h * g.in_w;
  APNN_CHECK(plane.cols() == g.in_c);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  bitops::BitMatrix out(g.batch * oh * ow, g.gemm_k());

  // Each patch row is independent (it writes only its own padded row of
  // `out`), so the lowering parallelizes over output positions. The grain
  // keeps one task per whole output row of the image to preserve the
  // sequential-slab access pattern within a task.
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  tp.parallel_for(0, g.batch * oh * ow, [&](std::int64_t row) {
    const std::int64_t x = row % ow;
    const std::int64_t y = (row / ow) % oh;
    const std::int64_t n = row / (oh * ow);
    std::uint64_t* dst = out.row(row);
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        const std::int64_t ih = y * g.stride + kh - g.pad;
        const std::int64_t iw = x * g.stride + kw - g.pad;
        const std::int64_t dst_bit =
            (static_cast<std::int64_t>(kh) * g.kernel + kw) * g.in_c;
        if (ih >= 0 && ih < g.in_h && iw >= 0 && iw < g.in_w) {
          const std::int64_t src_row = (n * g.in_h + ih) * g.in_w + iw;
          // One contiguous C-bit channel slab — the coalesced access the
          // channel-major layout provides.
          bitops::copy_bits(dst, dst_bit, plane.row(src_row), 0, g.in_c);
        } else if (pad_value) {
          bitops::fill_bits(dst, dst_bit, g.in_c, true);
        }
        // pad_value == 0 needs no action: rows start zeroed.
      }
    }
  }, /*grain=*/ow);
  return out;
}

OutPos conv_col_position(const ConvGeometry& g, std::int64_t col,
                         int pool_win) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  OutPos pos;
  if (pool_win <= 1) {
    pos.ox = col % ow;
    pos.oy = (col / ow) % oh;
    pos.n = col / (oh * ow);
    return pos;
  }
  const std::int64_t win = pool_win;
  const std::int64_t ph = oh / win, pw = ow / win;
  const std::int64_t widx = col / (win * win);
  const std::int64_t within = col % (win * win);
  const std::int64_t px = widx % pw;
  const std::int64_t py = (widx / pw) % ph;
  pos.n = widx / (ph * pw);
  pos.oy = py * win + within / win;
  pos.ox = px * win + within % win;
  return pos;
}

WindowGatherSource::WindowGatherSource(const PackedActivations& x,
                                       const ConvGeometry& g, bool pad_one,
                                       int pool_win, std::int64_t col0,
                                       std::int64_t nrows8,
                                       std::int64_t nvalid)
    : x_(&x),
      g_(&g),
      pad_one_(pad_one),
      win_(pool_win),
      col0_(col0),
      nrows8_(nrows8),
      nvalid_(nvalid),
      gemm_n_(g.gemm_n()),
      gemm_k_(g.gemm_k()) {
  APNN_DCHECK(x.n == g.batch && x.h == g.in_h && x.w == g.in_w &&
              x.c == g.in_c);
}

void WindowGatherSource::gather_row(std::int64_t col, int t, std::int64_t w0,
                                    std::int64_t words,
                                    std::uint64_t* dst) const {
  const std::int64_t bit_lo = w0 * bitops::kWordBits;
  const std::int64_t bit_hi =
      std::min(bit_lo + words * bitops::kWordBits, gemm_k_);
  if (bit_lo >= bit_hi) return;  // only 128-bit alignment padding: stays zero
  const OutPos pos = conv_col_position(*g_, col, win_);
  const bitops::BitMatrix& plane = x_->planes[static_cast<std::size_t>(t)];
  const std::int64_t in_c = g_->in_c;
  const std::int64_t base_ih = pos.oy * g_->stride - g_->pad;
  const std::int64_t base_iw = pos.ox * g_->stride - g_->pad;
  const std::int64_t plane_row0 = pos.n * g_->in_h;
  // Taps whose C-bit channel slab intersects the word range; kh/kw advance
  // incrementally so the walk is division-free past the first tap.
  const std::int64_t tap_lo = bit_lo / in_c;
  const std::int64_t tap_hi = (bit_hi - 1) / in_c;
  std::int64_t kh = tap_lo / g_->kernel;
  std::int64_t kw = tap_lo % g_->kernel;
  const bool word_aligned = (in_c % bitops::kWordBits) == 0;
  for (std::int64_t tap = tap_lo; tap <= tap_hi;
       ++tap, (++kw == g_->kernel ? (kw = 0, ++kh) : 0)) {
    const std::int64_t tap_bit = tap * in_c;
    const std::int64_t lo = std::max(bit_lo, tap_bit);
    const std::int64_t hi = std::min(bit_hi, tap_bit + in_c);
    const std::int64_t ih = base_ih + kh;
    const std::int64_t iw = base_iw + kw;
    if (ih >= 0 && ih < g_->in_h && iw >= 0 && iw < g_->in_w) {
      // One contiguous channel slab — the coalesced §4.2a access.
      const std::uint64_t* src = plane.row((plane_row0 + ih) * g_->in_w + iw);
      if (word_aligned && lo == tap_bit && hi == tap_bit + in_c) {
        // Whole slab at word granularity (the steady state for C % 64 == 0).
        std::uint64_t* d = dst + (lo - bit_lo) / bitops::kWordBits;
        for (std::int64_t i = 0; i < in_c / bitops::kWordBits; ++i) {
          d[i] = src[i];
        }
      } else {
        bitops::copy_bits(dst, lo - bit_lo, src, lo - tap_bit, hi - lo);
      }
    } else if (pad_one_) {
      bitops::fill_bits(dst, lo - bit_lo, hi - lo, true);
    }
    // pad bit 0 needs no action: the strip row starts zeroed.
  }
}

void WindowGatherSource::stage(std::int64_t w0, std::int64_t words,
                               std::uint64_t* panel) const {
  const int q = x_->bits;
  for (std::int64_t j = 0; j < nrows8_; ++j) {
    std::uint64_t* dst = panel + j * words;
    std::memset(dst, 0, static_cast<std::size_t>(words) * sizeof(*dst));
    if (j >= nvalid_) continue;
    const std::int64_t col = col0_ + j / q;
    if (col >= gemm_n_) continue;
    gather_row(col, static_cast<int>(j % q), w0, words, dst);
  }
}

void WindowGatherSource::stage_transposed(std::int64_t w0, std::int64_t words,
                                          std::uint64_t* panel,
                                          std::uint64_t* /*scratch*/) const {
  // Kept as the straight-line dense gather: this is the fused-conv hot path
  // and must not pay for the occupancy plumbing of the _occ variant below.
  const int q = x_->bits;
  std::uint64_t row_buf[core::microkernel::kStripWords];
  APNN_DCHECK(words <= core::microkernel::kStripWords);
  for (std::int64_t j = 0; j < nrows8_; ++j) {
    const std::int64_t col = col0_ + j / q;
    if (j >= nvalid_ || col >= gemm_n_) {
      for (std::int64_t w = 0; w < words; ++w) panel[w * nrows8_ + j] = 0;
      continue;
    }
    std::memset(row_buf, 0, static_cast<std::size_t>(words) * sizeof(*row_buf));
    gather_row(col, static_cast<int>(j % q), w0, words, row_buf);
    for (std::int64_t w = 0; w < words; ++w) {
      panel[w * nrows8_ + j] = row_buf[w];
    }
  }
}

std::int64_t WindowGatherSource::stage_transposed_occ(
    std::int64_t w0, std::int64_t words, std::uint64_t* panel,
    std::uint64_t* /*scratch*/, std::uint64_t* occ) const {
  const int q = x_->bits;
  const std::int64_t mw = core::microkernel::occ_words(words);
  std::memset(occ, 0, static_cast<std::size_t>(nrows8_ * mw) * sizeof(*occ));
  // The gather buffer is a fixed stack array; wider (autotuned) strips are
  // processed in kStripWords-sized sub-chunks rather than overrunning it.
  std::uint64_t row_buf[core::microkernel::kStripWords];
  for (std::int64_t c0 = 0; c0 < words; c0 += core::microkernel::kStripWords) {
    const std::int64_t cw =
        std::min(words - c0, core::microkernel::kStripWords);
    for (std::int64_t j = 0; j < nrows8_; ++j) {
      const std::int64_t col = col0_ + j / q;
      if (j >= nvalid_ || col >= gemm_n_) {
        for (std::int64_t w = 0; w < cw; ++w) panel[(c0 + w) * nrows8_ + j] = 0;
        continue;
      }
      std::memset(row_buf, 0, static_cast<std::size_t>(cw) * sizeof(*row_buf));
      gather_row(col, static_cast<int>(j % q), w0 + c0, cw, row_buf);
      for (std::int64_t w = 0; w < cw; ++w) {
        panel[(c0 + w) * nrows8_ + j] = row_buf[w];
      }
      // c0 is a kStripWords multiple and cw <= kStripWords <= 64, so the
      // chunk's occupancy bits never straddle a third mask word.
      const std::uint64_t m = core::microkernel::occ_scan(row_buf, cw);
      std::uint64_t* oc = occ + j * mw;
      oc[c0 >> 6] |= m << (c0 & 63);
      if ((c0 & 63) + cw > 64) oc[(c0 >> 6) + 1] |= m >> (64 - (c0 & 63));
    }
  }
  std::int64_t zeros = nrows8_ * words;
  for (std::int64_t c = 0; c < nrows8_ * mw; ++c) {
    zeros -= __builtin_popcountll(occ[c]);
  }
  return zeros;
}

}  // namespace apnn::layout

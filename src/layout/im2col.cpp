#include "src/layout/im2col.hpp"

#include "src/bitops/bitcopy.hpp"
#include "src/parallel/thread_pool.hpp"

namespace apnn::layout {

bitops::BitMatrix im2col_bits(const bitops::BitMatrix& plane,
                              const ConvGeometry& g, bool pad_value) {
  APNN_CHECK(plane.rows() == g.batch * g.in_h * g.in_w)
      << "plane rows " << plane.rows() << " vs geometry "
      << g.batch * g.in_h * g.in_w;
  APNN_CHECK(plane.cols() == g.in_c);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  bitops::BitMatrix out(g.batch * oh * ow, g.gemm_k());

  // Each patch row is independent (it writes only its own padded row of
  // `out`), so the lowering parallelizes over output positions. The grain
  // keeps one task per whole output row of the image to preserve the
  // sequential-slab access pattern within a task.
  parallel_for(0, g.batch * oh * ow, [&](std::int64_t row) {
    const std::int64_t x = row % ow;
    const std::int64_t y = (row / ow) % oh;
    const std::int64_t n = row / (oh * ow);
    std::uint64_t* dst = out.row(row);
    for (int kh = 0; kh < g.kernel; ++kh) {
      for (int kw = 0; kw < g.kernel; ++kw) {
        const std::int64_t ih = y * g.stride + kh - g.pad;
        const std::int64_t iw = x * g.stride + kw - g.pad;
        const std::int64_t dst_bit =
            (static_cast<std::int64_t>(kh) * g.kernel + kw) * g.in_c;
        if (ih >= 0 && ih < g.in_h && iw >= 0 && iw < g.in_w) {
          const std::int64_t src_row = (n * g.in_h + ih) * g.in_w + iw;
          // One contiguous C-bit channel slab — the coalesced access the
          // channel-major layout provides.
          bitops::copy_bits(dst, dst_bit, plane.row(src_row), 0, g.in_c);
        } else if (pad_value) {
          bitops::fill_bits(dst, dst_bit, g.in_c, true);
        }
        // pad_value == 0 needs no action: rows start zeroed.
      }
    }
  }, /*grain=*/ow);
  return out;
}

}  // namespace apnn::layout

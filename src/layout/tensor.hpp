// Minimal dense tensor used throughout the library (host data only).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/rng.hpp"

namespace apnn {

/// Row-major dense tensor.
template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
    std::int64_t n = 1;
    for (auto d : shape_) {
      APNN_CHECK(d >= 0) << "negative dim";
      n *= d;
    }
    data_.assign(static_cast<std::size_t>(n), T{});
  }

  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  const std::vector<std::int64_t>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::int64_t dim(int i) const {
    APNN_DCHECK(i >= 0 && i < rank());
    return shape_[static_cast<std::size_t>(i)];
  }
  std::int64_t numel() const {
    return static_cast<std::int64_t>(data_.size());
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](std::int64_t i) {
    APNN_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  const T& operator[](std::int64_t i) const {
    APNN_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// Variadic element access: t(i, j, k) with row-major strides.
  template <typename... Ix>
  T& operator()(Ix... ix) {
    return data_[static_cast<std::size_t>(flat_index({static_cast<std::int64_t>(ix)...}))];
  }
  template <typename... Ix>
  const T& operator()(Ix... ix) const {
    return data_[static_cast<std::size_t>(flat_index({static_cast<std::int64_t>(ix)...}))];
  }

  /// Reinterpret with a new shape of equal element count.
  Tensor<T> reshaped(std::vector<std::int64_t> new_shape) const {
    Tensor<T> t(std::move(new_shape));
    APNN_CHECK(t.numel() == numel())
        << "reshape " << numel() << " -> " << t.numel();
    t.data_ = data_;
    return t;
  }

  /// Reshapes in place to an arbitrary new shape, reusing the existing heap
  /// buffers (data and shape vector) whenever capacity suffices — the
  /// session slab relies on this for zero steady-state allocations. Element
  /// values are unspecified afterwards unless the element count is
  /// unchanged.
  void reset_shape(std::initializer_list<std::int64_t> shape) {
    shape_.assign(shape);
    finish_reset();
  }
  void reset_shape(const std::vector<std::int64_t>& shape) {
    shape_.assign(shape.begin(), shape.end());
    finish_reset();
  }

  /// Bytes of backing storage currently reserved (>= numel() * sizeof(T)).
  std::size_t capacity_bytes() const { return data_.capacity() * sizeof(T); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Uniform fill: integers in [lo, hi], or reals in [lo, hi).
  void randomize(Rng& rng, T lo, T hi) {
    if constexpr (std::is_integral_v<T>) {
      for (auto& v : data_) {
        v = static_cast<T>(rng.uniform_int(static_cast<std::int64_t>(lo),
                                           static_cast<std::int64_t>(hi)));
      }
    } else {
      for (auto& v : data_) {
        v = static_cast<T>(rng.uniform(static_cast<double>(lo),
                                       static_cast<double>(hi)));
      }
    }
  }

  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const {
    APNN_DCHECK(static_cast<int>(idx.size()) == rank());
    std::int64_t flat = 0;
    int d = 0;
    for (std::int64_t i : idx) {
      APNN_DCHECK(i >= 0 && i < shape_[static_cast<std::size_t>(d)])
          << "index " << i << " out of bounds for dim " << d;
      flat = flat * shape_[static_cast<std::size_t>(d)] + i;
      ++d;
    }
    return flat;
  }

  bool operator==(const Tensor<T>& o) const {
    return shape_ == o.shape_ && data_ == o.data_;
  }

 private:
  void finish_reset() {
    std::int64_t n = 1;
    for (auto d : shape_) {
      APNN_CHECK(d >= 0) << "negative dim";
      n *= d;
    }
    data_.resize(static_cast<std::size_t>(n));
  }

  std::vector<std::int64_t> shape_;
  std::vector<T> data_;
};

}  // namespace apnn

#include "src/parallel/slab.hpp"

#include <algorithm>

namespace apnn::parallel {

std::size_t SlabSlot::capacity_bytes() const {
  std::size_t total = dense.capacity_bytes();
  for (const auto& p : packed.planes) total += p.capacity_bytes();
  for (const auto& p : planes.planes) total += p.capacity_bytes();
  return total;
}

std::size_t ActivationSlab::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& s : slots_) total += s.capacity_bytes();
  return total;
}

void ActivationSlab::note_high_water() {
  high_water_ = std::max(high_water_, capacity_bytes());
}

}  // namespace apnn::parallel

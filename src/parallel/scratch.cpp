#include "src/parallel/scratch.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/parallel/thread_pool.hpp"

namespace apnn::parallel {

namespace {

constexpr std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

/// First chunk size: big enough for a typical block's temporaries so most
/// shapes never grow at all.
constexpr std::size_t kInitialChunkBytes = std::size_t{1} << 16;  // 64 KiB

}  // namespace

void ScratchArena::add_chunk(std::size_t min_bytes) {
  // Geometric growth keeps the number of lifetime allocations logarithmic in
  // the high-water mark.
  const std::size_t size = std::max(
      {align_up(min_bytes, kAlignment), kInitialChunkBytes, capacity_});
  Chunk c;
  // operator new guarantees only alignof(max_align_t); over-allocate and let
  // raw() align the bump pointer instead of relying on the base address.
  c.data = std::make_unique<std::byte[]>(size + kAlignment);
  c.size = size;
  ++heap_allocs_;
  capacity_ += size;
  chunks_.push_back(std::move(c));
}

std::byte* ScratchArena::raw(std::size_t bytes) {
  bytes = align_up(std::max<std::size_t>(bytes, 1), kAlignment);
  for (;;) {
    if (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
      const std::size_t skew = align_up(base, kAlignment) - base;
      if (offset_ + bytes <= c.size) {
        std::byte* p = c.data.get() + skew + offset_;
        offset_ += bytes;
        used_ += bytes;
        high_water_ = std::max(high_water_, used_);
        return p;
      }
      // Active chunk exhausted: move on (leftover bytes are reclaimed by the
      // coalescing reset()).
      ++active_;
      offset_ = 0;
      continue;
    }
    add_chunk(bytes);
    active_ = chunks_.size() - 1;
    offset_ = 0;
  }
}

void ScratchArena::reset() {
  if (chunks_.size() > 1) {
    // The last cycle spilled over chunk boundaries. Replace the fragments
    // with one buffer covering the whole high-water footprint so the next
    // cycle bump-allocates from a single block and never spills again.
    const std::size_t total = capacity_;
    chunks_.clear();
    capacity_ = 0;
    add_chunk(total);
  }
  active_ = 0;
  offset_ = 0;
  used_ = 0;
}

ScratchArena& ScratchArena::tls() {
  // Keyed per (thread x pool identity), not per process-wide thread: a thread
  // serving several pool slices (a work-stealing worker, or the global pool's
  // caller later entering a slice) gets a distinct arena per slice, so a
  // slice's slabs are touched only by the cores that consume its work. The
  // key is opaque — compared, never dereferenced — so a dead pool's slot
  // simply goes cold (bounded by the handful of pools a thread ever serves).
  struct Slot {
    const void* key;
    std::unique_ptr<ScratchArena> arena;
  };
  static thread_local std::vector<Slot> slots;
  const void* key = ThreadPool::current_key();
  for (Slot& s : slots) {
    if (s.key == key) return *s.arena;
  }
  slots.push_back(Slot{key, std::make_unique<ScratchArena>()});
  return *slots.back().arena;
}

}  // namespace apnn::parallel

#include "src/parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "src/common/check.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace apnn {

namespace {

/// Pool whose task (or participating parallel_for) the thread is running.
thread_local const ThreadPool* tls_current_pool = nullptr;

/// RAII save/restore so nested loops and exceptions unwind the key correctly.
struct CurrentPoolScope {
  explicit CurrentPoolScope(const ThreadPool* pool)
      : saved(tls_current_pool) {
    tls_current_pool = pool;
  }
  ~CurrentPoolScope() { tls_current_pool = saved; }
  const ThreadPool* saved;
};

/// Everything a queued chunk task needs, owned jointly by the caller and
/// every helper via shared_ptr — a helper dequeued (or stolen) after
/// parallel_for returned touches only this block, never the caller's frame.
struct LoopShared {
  std::function<void(std::int64_t)> fn;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t nchunks = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mu;  // guards error; completion waiters sleep on done_cv
  std::condition_variable done_cv;
};

/// Drains the shared chunk counter. Safe to run on any thread at any time:
/// once every chunk is claimed it returns without touching fn.
void run_chunks(const std::shared_ptr<LoopShared>& s) {
  for (;;) {
    const std::int64_t c = s->next.fetch_add(1);
    if (c >= s->nchunks) return;
    const std::int64_t lo = s->begin + c * s->grain;
    const std::int64_t hi = std::min<std::int64_t>(lo + s->grain, s->end);
    if (!s->failed.load(std::memory_order_relaxed)) {
      try {
        for (std::int64_t i = lo; i < hi; ++i) s->fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (!s->failed.exchange(true)) {
          s->error = std::current_exception();
        }
      }
    }
    if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->nchunks) {
      // Empty critical section orders the notify after a waiter's predicate
      // check, closing the missed-wakeup window.
      { std::lock_guard<std::mutex> lock(s->mu); }
      s->done_cv.notify_all();
    }
  }
}

}  // namespace

int WorkStealGroup::pools() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(members_.size());
}

void WorkStealGroup::add(ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  members_.push_back(pool);
  total_workers_.fetch_add(static_cast<std::int64_t>(pool->workers_.size()),
                           std::memory_order_relaxed);
}

void WorkStealGroup::remove(ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  members_.erase(std::remove(members_.begin(), members_.end(), pool),
                 members_.end());
  total_workers_.fetch_sub(static_cast<std::int64_t>(pool->workers_.size()),
                           std::memory_order_relaxed);
}

std::int64_t WorkStealGroup::workers_besides(const ThreadPool* self) const {
  const std::int64_t own = static_cast<std::int64_t>(self->workers_.size());
  const std::int64_t total = total_workers_.load(std::memory_order_relaxed);
  return std::max<std::int64_t>(0, total - own);
}

void WorkStealGroup::note_enqueued(std::int64_t n, ThreadPool* owner) {
  pending_.fetch_add(n, std::memory_order_acq_rel);
  // Wake idle sibling workers so they can steal. Taking each sibling's mutex
  // (empty critical section) before notifying orders the wake after its
  // predicate check; the group lock keeps the member alive while we touch it.
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadPool* p : members_) {
    if (p == owner) continue;
    { std::lock_guard<std::mutex> plock(p->mu_); }
    p->cv_.notify_all();
  }
}

bool WorkStealGroup::steal_and_run(ThreadPool* thief) {
  ThreadPool::Task task;
  bool have = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ThreadPool* p : members_) {
      if (p == thief) continue;
      std::lock_guard<std::mutex> plock(p->mu_);
      if (p->queue_.empty()) continue;
      task = std::move(p->queue_.front());
      p->queue_.pop_front();
      have = true;
      break;
    }
    if (have) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!have) return false;
  task.fn();  // outside all locks; the task owns its state via LoopShared
  return true;
}

ThreadPool::ThreadPool(unsigned num_threads) { start(num_threads); }

ThreadPool::ThreadPool(const ThreadPoolOptions& opts)
    : help_foreign_(opts.help_foreign),
      pin_threads_(opts.pin_threads),
      cpus_(opts.cpus),
      group_(opts.steal_group) {
  unsigned num_threads = opts.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (pin_threads_ && cpus_.empty()) {
    for (unsigned i = 0; i < num_threads; ++i) {
      cpus_.push_back(static_cast<int>(i));
    }
  }
  start(num_threads);
  if (group_ != nullptr) group_->add(this);
}

void ThreadPool::start(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The caller participates in parallel_for, so spawn one fewer worker.
  const unsigned spawned = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(spawned);
  for (unsigned i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (group_ != nullptr) {
    // After remove() returns no sibling can reach this pool's queue; any
    // leftover tasks (there should be none — loops erase their own stale
    // helpers) are counted out of the group's pending total.
    group_->remove(this);
    if (!queue_.empty()) {
      group_->note_dequeued(static_cast<std::int64_t>(queue_.size()));
    }
  }
}

std::size_t ThreadPool::queued_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

const void* ThreadPool::current_key() { return tls_current_pool; }

bool ThreadPool::pin_current_thread(int cpu) {
#ifdef __linux__
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void ThreadPool::worker_loop(unsigned index) {
  if (pin_threads_ && index + 1 < cpus_.size()) {
    pin_current_thread(cpus_[index + 1]);  // best-effort
  }
  CurrentPoolScope scope(this);
  for (;;) {
    Task task;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stop_ || !queue_.empty() ||
               (group_ != nullptr && group_->pending() > 0);
      });
      if (stop_ && queue_.empty()) return;
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
        have = true;
      }
    }
    if (have) {
      if (group_ != nullptr) group_->note_dequeued(1);
      task.fn();
      continue;
    }
    // Own queue empty but the group has pending work: steal from a sibling.
    if (group_ != nullptr && group_->steal_and_run(this)) continue;
    std::this_thread::yield();  // lost the race; re-check the predicate
  }
}

bool ThreadPool::run_one() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  if (group_ != nullptr) group_->note_dequeued(1);
  task.fn();
  return true;
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn,
                              std::int64_t grain) {
  APNN_CHECK(grain >= 1) << "grain=" << grain;
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const std::int64_t nchunks = (n + grain - 1) / grain;
  // Helper budget: own workers plus, when grouped, idle siblings that could
  // steal a queued drain task (a 1-wide slice in a group still fans out).
  const std::int64_t budget =
      static_cast<std::int64_t>(workers_.size()) +
      (group_ != nullptr ? group_->workers_besides(this) : 0);
  const std::int64_t helpers = std::min<std::int64_t>(budget, nchunks - 1);
  if (helpers <= 0) {
    CurrentPoolScope scope(this);
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto shared = std::make_shared<LoopShared>();
  shared->fn = fn;
  shared->begin = begin;
  shared->end = end;
  shared->grain = grain;
  shared->nchunks = nchunks;

  // One queued task per helper; each drains the shared chunk counter. Tasks
  // are self-contained (own the loop state through `shared`) so a stale or
  // stolen helper can never dangle into this frame.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t i = 0; i < helpers; ++i) {
      queue_.push_back(Task{[shared] { run_chunks(shared); }, shared.get()});
    }
  }
  cv_.notify_all();
  if (group_ != nullptr) group_->note_enqueued(helpers, this);

  {
    CurrentPoolScope scope(this);
    run_chunks(shared);  // caller participates
  }

  if (help_foreign_) {
    // Help drain any unrelated queued tasks while waiting (avoids idling if
    // parallel_for is nested); park briefly on the completion signal when the
    // queue is empty instead of spinning.
    CurrentPoolScope scope(this);
    while (shared->done.load(std::memory_order_acquire) < nchunks) {
      if (!run_one()) {
        std::unique_lock<std::mutex> lock(shared->mu);
        shared->done_cv.wait_for(lock, std::chrono::microseconds(200), [&] {
          return shared->done.load(std::memory_order_acquire) >= nchunks;
        });
      }
    }
  } else {
    // Latency-bounded wait: only this loop's chunks can extend the caller's
    // critical path — never an arbitrary foreign task.
    std::unique_lock<std::mutex> lock(shared->mu);
    shared->done_cv.wait(lock, [&] {
      return shared->done.load(std::memory_order_acquire) >= nchunks;
    });
  }

  // Drop stale helpers: every chunk is claimed, so helpers still queued are
  // pure no-ops — erase them instead of leaving them for a later dequeue.
  std::int64_t removed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->tag == shared.get()) {
        it = queue_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  if (removed > 0 && group_ != nullptr) group_->note_dequeued(removed);

  if (shared->failed.load()) std::rethrow_exception(shared->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain) {
  ThreadPool::global().parallel_for(begin, end, fn, grain);
}

}  // namespace apnn

#include "src/parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "src/common/check.hpp"

namespace apnn {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The caller participates in parallel_for, so spawn one fewer worker.
  const unsigned spawned = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(spawned);
  for (unsigned i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
  }
}

bool ThreadPool::run_one() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task.fn();
  return true;
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn,
                              std::int64_t grain) {
  APNN_CHECK(grain >= 1) << "grain=" << grain;
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const std::int64_t nchunks = (n + grain - 1) / grain;
  if (nchunks == 1 || workers_.empty()) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
  };
  auto shared = std::make_shared<Shared>();

  auto run_chunk = [shared, begin, end, grain, &fn, nchunks]() {
    for (;;) {
      const std::int64_t c = shared->next.fetch_add(1);
      if (c >= nchunks) return;
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min<std::int64_t>(lo + grain, end);
      if (!shared->failed.load(std::memory_order_relaxed)) {
        try {
          for (std::int64_t i = lo; i < hi; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared->error_mu);
          if (!shared->failed.exchange(true)) {
            shared->error = std::current_exception();
          }
        }
      }
      shared->done.fetch_add(1, std::memory_order_acq_rel);
    }
  };

  // One queued task per worker; each drains the shared chunk counter.
  const std::int64_t helpers = std::min<std::int64_t>(
      static_cast<std::int64_t>(workers_.size()), nchunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t i = 0; i < helpers; ++i) {
      queue_.push_back(Task{run_chunk});
    }
  }
  cv_.notify_all();

  run_chunk();  // caller participates

  // Help drain any unrelated queued tasks while waiting (avoids deadlock if
  // parallel_for is nested).
  while (shared->done.load(std::memory_order_acquire) < nchunks) {
    if (!run_one()) std::this_thread::yield();
  }

  if (shared->failed.load()) std::rethrow_exception(shared->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain) {
  ThreadPool::global().parallel_for(begin, end, fn, grain);
}

}  // namespace apnn

// Session-owned activation slab.
//
// An InferenceSession's ExecutionPlan assigns every intermediate network
// value to a slot of an ActivationSlab. Unlike the per-thread ScratchArena
// (block-scoped temporaries), slab slots hold whole inter-layer activations
// and are shared across the plan: liveness analysis reuses a slot as soon as
// its previous occupant's last consumer has run. Each slot keeps one
// resizable buffer per value representation — a dense int32 tensor, packed
// channel-major activations, and transposed feature bit planes — all of
// which reshape in place and grow to their high-water capacity once, so
// steady-state forward passes perform zero heap allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/bitops/decompose.hpp"
#include "src/layout/packed_activations.hpp"
#include "src/layout/tensor.hpp"

namespace apnn::parallel {

/// One reusable activation buffer. A slot holds at most one live value at a
/// time; which member carries it is the plan's bookkeeping.
struct SlabSlot {
  Tensor<std::int32_t> dense;          ///< dense NHWC / {B, F} values
  layout::PackedActivations packed;    ///< channel-major packed activations
  bitops::BitPlanes planes;            ///< N x M feature planes (linear path)

  std::size_t capacity_bytes() const;
};

/// Fixed pool of SlabSlots with footprint accounting. Not thread-safe: a
/// slab belongs to one session, and one run() executes at a time.
class ActivationSlab {
 public:
  ActivationSlab() = default;
  ActivationSlab(const ActivationSlab&) = delete;
  ActivationSlab& operator=(const ActivationSlab&) = delete;

  /// Ensures at least `n` slots exist.
  void require(std::size_t n) {
    if (slots_.size() < n) slots_.resize(n);
  }

  std::size_t size() const { return slots_.size(); }
  SlabSlot& slot(std::size_t i) { return slots_[i]; }
  const SlabSlot& slot(std::size_t i) const { return slots_[i]; }

  /// Total backing capacity across all slots. Stable across repeated runs of
  /// the same workload — the zero-steady-state-allocation tests pin this.
  std::size_t capacity_bytes() const;

  /// Largest capacity_bytes() ever observed (updated by note_high_water,
  /// which run() calls once per pass).
  std::size_t high_water_bytes() const { return high_water_; }
  void note_high_water();

 private:
  std::vector<SlabSlot> slots_;
  std::size_t high_water_ = 0;
};

}  // namespace apnn::parallel

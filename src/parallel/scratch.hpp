// Per-thread scratch arenas for the block-parallel kernels.
//
// The simulated GPU kernels run one thread block per pool task; every block
// needs the same small set of temporaries (row-pointer tables, staged tile
// panels, raw accumulators, packed-output masks). Heap-allocating those
// inside the parallel_for lambda serializes blocks on the allocator and
// dominated the seed hot path. A ScratchArena is a bump allocator that each
// worker thread owns: allocations are pointer bumps, reset() recycles the
// whole arena between blocks, and the backing buffer grows to the high-water
// mark once and is then reused forever — zero heap traffic in steady state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace apnn::parallel {

/// Thread-confined bump allocator. Pointers returned by get() stay valid
/// until the next reset(). Not thread-safe by design: use tls() to obtain
/// the calling thread's private arena.
class ScratchArena {
 public:
  /// All blocks are cache-line aligned (the staged tile panels want it).
  static constexpr std::size_t kAlignment = 64;

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns storage for `count` objects of T, aligned to kAlignment. The
  /// memory is NOT zeroed (callers that need zeros fill explicitly — most
  /// uses overwrite every element anyway).
  template <typename T>
  T* get(std::int64_t count) {
    return reinterpret_cast<T*>(
        raw(static_cast<std::size_t>(count) * sizeof(T)));
  }

  /// Marks every byte reusable. If the previous cycle overflowed into
  /// secondary chunks, the arena coalesces to one buffer sized at the
  /// high-water mark so future cycles allocate nothing.
  void reset();

  /// Bytes handed out since the last reset().
  std::size_t used_bytes() const { return used_; }

  /// Largest used_bytes() ever observed — the steady-state footprint a
  /// recurring workload settles at. The high-water stability tests pin that
  /// this stops moving after the first pass over a given shape.
  std::size_t high_water_bytes() const { return high_water_; }

  /// Current backing capacity across all chunks.
  std::size_t capacity_bytes() const { return capacity_; }

  /// Number of heap allocations the arena has performed over its lifetime —
  /// the steady-state-zero-allocation tests watch this counter.
  std::int64_t heap_alloc_count() const { return heap_allocs_; }

  /// The calling thread's private arena (thread_local, lazily built). Worker
  /// threads of the global ThreadPool live for the whole process, so their
  /// arenas reach steady state after the first pass over a given shape.
  static ScratchArena& tls();

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::byte* raw(std::size_t bytes);
  void add_chunk(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;    ///< chunk currently being bumped
  std::size_t offset_ = 0;    ///< bump offset within the active chunk
  std::size_t used_ = 0;      ///< bytes handed out since reset()
  std::size_t high_water_ = 0;  ///< max used_ over the arena's lifetime
  std::size_t capacity_ = 0;  ///< sum of chunk sizes
  std::int64_t heap_allocs_ = 0;
};

}  // namespace apnn::parallel

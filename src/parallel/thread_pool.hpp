// Host thread pool used to execute blocks of the simulated GPU grid.
//
// The APNN-TC kernels are written as loops over thread blocks; on the host we
// farm independent blocks across a pool. Exceptions thrown by tasks are
// captured and rethrown on the caller's thread.
//
// Pools can be carved into disjoint slices: each InferenceServer replica owns
// a private pool (optionally pinned to a CPU range) instead of all replicas
// oversubscribing the process-global pool. Slices registered in one
// WorkStealGroup steal queued chunk tasks from busy siblings when idle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apnn {

class ThreadPool;

/// Registry that lets idle member pools steal queued chunk tasks from busy
/// siblings. Members register at construction and unregister at destruction;
/// the group must outlive every member pool. All queued tasks are
/// self-contained (they own their loop state via a shared block), so a task
/// may safely run on any thread in the group.
class WorkStealGroup {
 public:
  WorkStealGroup() = default;
  WorkStealGroup(const WorkStealGroup&) = delete;
  WorkStealGroup& operator=(const WorkStealGroup&) = delete;

  /// Total tasks stolen across the group's lifetime.
  std::int64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Number of currently registered pools.
  int pools() const;

 private:
  friend class ThreadPool;

  void add(ThreadPool* pool);
  void remove(ThreadPool* pool);
  /// Bumps the group-wide pending count and wakes idle siblings of `owner`.
  void note_enqueued(std::int64_t n, ThreadPool* owner);
  void note_dequeued(std::int64_t n) {
    pending_.fetch_sub(n, std::memory_order_acq_rel);
  }
  std::int64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }
  /// Pops one task from a sibling of `thief` and runs it on this thread.
  bool steal_and_run(ThreadPool* thief);
  /// Worker threads owned by members other than `self` (helper budget).
  std::int64_t workers_besides(const ThreadPool* self) const;

  mutable std::mutex mu_;
  std::vector<ThreadPool*> members_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::int64_t> steals_{0};
  std::atomic<std::int64_t> total_workers_{0};
};

/// Construction knobs for a pool slice. The plain ThreadPool(unsigned)
/// constructor is equivalent to only setting num_threads.
struct ThreadPoolOptions {
  /// Logical width including the calling thread; 0 = hardware_concurrency().
  unsigned num_threads = 0;
  /// Pin worker threads to `cpus` (Linux; best-effort, ignored elsewhere).
  bool pin_threads = false;
  /// CPU ids for pinning: cpus[0] is reserved for the caller/dispatcher slot
  /// (pin it yourself via pin_current_thread), workers take cpus[1..]. Empty
  /// with pin_threads set derives the identity mapping 0..num_threads-1.
  std::vector<int> cpus;
  /// When false, a blocked parallel_for caller waits on the loop's own
  /// completion signal instead of running unrelated queued tasks, so a
  /// latency-sensitive caller (a replica serving deadline traffic) never
  /// absorbs a foreign task. The global pool keeps foreign help.
  bool help_foreign = true;
  /// Optional stealing group; must outlive the pool.
  WorkStealGroup* steal_group = nullptr;
};

/// Fixed-size worker pool with a blocking parallel_for.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(unsigned num_threads = 0);
  explicit ThreadPool(const ThreadPoolOptions& opts);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads spawned (logical width minus the participating caller).
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for i in [begin, end), partitioned into chunks of `grain`
  /// indices, blocking until every index has completed. The calling thread
  /// participates in the work. Rethrows the first task exception.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn,
                    std::int64_t grain = 1);

  /// Tasks currently sitting in this pool's queue (introspection for tests).
  std::size_t queued_tasks() const;

  /// Identity of the pool whose work the calling thread is currently
  /// executing (nullptr outside any pool task). Used purely as an opaque key
  /// — e.g. ScratchArena::tls() keys arenas per (thread x pool) so a slice's
  /// slabs are touched only by the cores that consume them. Never
  /// dereference: the pool may be gone by the time the key is compared.
  static const void* current_key();

  /// Best-effort affinity pin for the calling thread (Linux; returns false
  /// elsewhere or on failure). Exposed so a server can pin its dispatcher
  /// threads onto their replica's CPU slot.
  static bool pin_current_thread(int cpu);

  /// Process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  friend class WorkStealGroup;

  struct Task {
    std::function<void()> fn;
    /// Identity of the parallel_for that queued this task; lets the loop
    /// erase its own stale helpers on return. Opaque, never dereferenced.
    const void* tag = nullptr;
  };

  void start(unsigned num_threads);
  void worker_loop(unsigned index);
  bool run_one();  // returns false if queue empty

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool help_foreign_ = true;
  bool pin_threads_ = false;
  std::vector<int> cpus_;
  WorkStealGroup* group_ = nullptr;
};

/// Convenience wrapper over ThreadPool::global().
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain = 1);

}  // namespace apnn

// Host thread pool used to execute blocks of the simulated GPU grid.
//
// The APNN-TC kernels are written as loops over thread blocks; on the host we
// farm independent blocks across a pool. Exceptions thrown by tasks are
// captured and rethrown on the caller's thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apnn {

/// Fixed-size worker pool with a blocking parallel_for.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for i in [begin, end), partitioned into chunks of `grain`
  /// indices, blocking until every index has completed. The calling thread
  /// participates in the work. Rethrows the first task exception.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn,
                    std::int64_t grain = 1);

  /// Process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  bool run_one();  // returns false if queue empty

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain = 1);

}  // namespace apnn

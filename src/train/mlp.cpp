#include "src/train/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.hpp"

namespace apnn::train {

Tensor<float> fake_quantize_weights(const Tensor<float>& w, int wbits) {
  Tensor<float> q(w.shape());
  if (wbits == 1) {
    // BWN: sign(w) * E|w|.
    double mean_abs = 0;
    for (std::int64_t i = 0; i < w.numel(); ++i) mean_abs += std::abs(w[i]);
    mean_abs /= std::max<std::int64_t>(1, w.numel());
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      q[i] = static_cast<float>(w[i] >= 0 ? mean_abs : -mean_abs);
    }
    return q;
  }
  // Symmetric uniform over [-amax, amax], 2^wbits levels.
  float amax = 0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    amax = std::max(amax, std::abs(w[i]));
  }
  if (amax == 0) return w;
  const int half = (1 << (wbits - 1)) - 1;  // symmetric integer grid
  const float step = amax / std::max(half, 1);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const float lvl = std::round(w[i] / step);
    q[i] = step * std::clamp<float>(lvl, -half - 1, half);
  }
  return q;
}

Tensor<float> fake_quantize_activations(const Tensor<float>& a, int abits) {
  Tensor<float> q(a.shape());
  const int levels = (1 << abits) - 1;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const float clipped = std::clamp(a[i], 0.f, 1.f);
    q[i] = levels > 0 ? std::round(clipped * levels) / levels : clipped;
  }
  return q;
}

Mlp::Mlp(std::vector<std::int64_t> sizes, std::uint64_t seed)
    : sizes_(std::move(sizes)) {
  APNN_CHECK(sizes_.size() >= 2) << "need at least input and output sizes";
  Rng rng(seed);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const std::int64_t in = sizes_[l], out = sizes_[l + 1];
    Tensor<float> w({out, in});
    const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      w[i] = static_cast<float>(rng.uniform(-bound, bound));
    }
    w_.push_back(std::move(w));
    b_.emplace_back(Tensor<float>({out}));
    vw_.emplace_back(Tensor<float>(w_.back().shape()));
    vb_.emplace_back(Tensor<float>({out}));
  }
}

Tensor<float> Mlp::forward_impl(const Tensor<float>& x, const QatConfig& qat,
                                ForwardCache* cache) const {
  const std::int64_t batch = x.dim(0);
  Tensor<float> a = x;
  if (cache) {
    cache->a.clear();
    cache->z.clear();
    cache->wq.clear();
  }
  for (std::size_t l = 0; l < w_.size(); ++l) {
    const bool is_head = l + 1 == w_.size();
    const Tensor<float> wq = (qat.enabled && !is_head)
                                 ? fake_quantize_weights(w_[l], qat.wbits)
                                 : w_[l];
    if (cache) {
      cache->a.push_back(a);
      cache->wq.push_back(wq);
    }
    const std::int64_t out = wq.dim(0), in = wq.dim(1);
    APNN_CHECK(a.dim(1) == in) << "layer " << l << " dim mismatch";
    Tensor<float> z({batch, out});
    for (std::int64_t bi = 0; bi < batch; ++bi) {
      for (std::int64_t o = 0; o < out; ++o) {
        float acc = b_[l][o];
        const float* wrow = wq.data() + o * in;
        const float* arow = a.data() + bi * in;
        for (std::int64_t i = 0; i < in; ++i) acc += wrow[i] * arow[i];
        z(bi, o) = acc;
      }
    }
    if (cache) cache->z.push_back(z);
    if (is_head) return z;  // logits
    // Hidden activation: clipped ReLU (+ fake quantization under QAT).
    Tensor<float> act(z.shape());
    for (std::int64_t i = 0; i < z.numel(); ++i) {
      act[i] = std::max(z[i], 0.f);
    }
    a = qat.enabled ? fake_quantize_activations(act, qat.abits) : act;
  }
  return a;
}

Tensor<float> Mlp::forward(const Tensor<float>& x,
                           const QatConfig& qat) const {
  return forward_impl(x, qat, nullptr);
}

double Mlp::train_epoch(const synth::Dataset& data, const QatConfig& qat,
                        const TrainConfig& cfg, Rng& rng) {
  const std::int64_t n = data.size();
  const std::int64_t features = data.features();
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates shuffle with our deterministic RNG.
  for (std::int64_t i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.uniform_int(0, i))]);
  }

  double total_loss = 0;
  std::int64_t batches = 0;
  for (std::int64_t start = 0; start < n; start += cfg.batch) {
    const std::int64_t bs = std::min<std::int64_t>(cfg.batch, n - start);
    Tensor<float> x({bs, features});
    std::vector<int> labels(static_cast<std::size_t>(bs));
    for (std::int64_t bi = 0; bi < bs; ++bi) {
      const std::int64_t idx = order[static_cast<std::size_t>(start + bi)];
      for (std::int64_t f = 0; f < features; ++f) {
        x(bi, f) = data.images[idx * features + f];
      }
      labels[static_cast<std::size_t>(bi)] =
          data.labels[static_cast<std::size_t>(idx)];
    }

    ForwardCache cache;
    const Tensor<float> logits = forward_impl(x, qat, &cache);
    const std::int64_t classes = logits.dim(1);

    // Softmax cross-entropy gradient (delta = softmax - onehot) / bs.
    Tensor<float> delta(logits.shape());
    double loss = 0;
    for (std::int64_t bi = 0; bi < bs; ++bi) {
      float maxv = logits(bi, 0);
      for (std::int64_t c = 1; c < classes; ++c) {
        maxv = std::max(maxv, logits(bi, c));
      }
      double denom = 0;
      for (std::int64_t c = 0; c < classes; ++c) {
        denom += std::exp(static_cast<double>(logits(bi, c) - maxv));
      }
      const int y = labels[static_cast<std::size_t>(bi)];
      for (std::int64_t c = 0; c < classes; ++c) {
        const double pc =
            std::exp(static_cast<double>(logits(bi, c) - maxv)) / denom;
        delta(bi, c) = static_cast<float>((pc - (c == y ? 1.0 : 0.0)) /
                                          static_cast<double>(bs));
        if (c == y) loss -= std::log(std::max(pc, 1e-12));
      }
    }
    total_loss += loss / static_cast<double>(bs);
    ++batches;

    // Backward pass. STE: gradients flow through the fake-quantized weights
    // and activations as if they were identity maps (clipped ReLU masks by
    // the pre-activation sign and the [0, 1] clip range).
    Tensor<float> grad_out = delta;  // d loss / d z of current layer
    for (int l = static_cast<int>(w_.size()) - 1; l >= 0; --l) {
      const Tensor<float>& a_in = cache.a[static_cast<std::size_t>(l)];
      const Tensor<float>& wq = cache.wq[static_cast<std::size_t>(l)];
      const std::int64_t out = wq.dim(0), in = wq.dim(1);

      // Weight/bias gradients and SGD+momentum update.
      auto& vw = vw_[static_cast<std::size_t>(l)];
      auto& vb = vb_[static_cast<std::size_t>(l)];
      auto& w = w_[static_cast<std::size_t>(l)];
      auto& b = b_[static_cast<std::size_t>(l)];
      for (std::int64_t o = 0; o < out; ++o) {
        float gb = 0;
        for (std::int64_t bi = 0; bi < bs; ++bi) gb += grad_out(bi, o);
        vb[o] = static_cast<float>(cfg.momentum * vb[o] - cfg.lr * gb);
        b[o] += vb[o];
        for (std::int64_t i = 0; i < in; ++i) {
          float gw = 0;
          for (std::int64_t bi = 0; bi < bs; ++bi) {
            gw += grad_out(bi, o) * a_in(bi, i);
          }
          vw[o * in + i] = static_cast<float>(cfg.momentum * vw[o * in + i] -
                                              cfg.lr * gw);
          w[o * in + i] += vw[o * in + i];
        }
      }

      if (l == 0) break;
      // Propagate to the previous layer's pre-activation.
      const Tensor<float>& z_prev = cache.z[static_cast<std::size_t>(l - 1)];
      Tensor<float> grad_in({bs, in});
      for (std::int64_t bi = 0; bi < bs; ++bi) {
        for (std::int64_t i = 0; i < in; ++i) {
          float g = 0;
          for (std::int64_t o = 0; o < out; ++o) {
            g += grad_out(bi, o) * wq(o, i);
          }
          // Clipped-ReLU STE mask: gradient passes where 0 < z < 1 (or z > 0
          // without QAT).
          const float z = z_prev(bi, i);
          const bool pass = qat.enabled ? (z > 0.f && z < 1.f) : (z > 0.f);
          grad_in(bi, i) = pass ? g : 0.f;
        }
      }
      grad_out = std::move(grad_in);
    }
  }
  return total_loss / std::max<std::int64_t>(1, batches);
}

double Mlp::evaluate(const synth::Dataset& data, const QatConfig& qat) const {
  const std::int64_t n = data.size();
  const std::int64_t features = data.features();
  Tensor<float> x({n, features});
  for (std::int64_t i = 0; i < n * features; ++i) x[i] = data.images[i];
  const Tensor<float> logits = forward(x, qat);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < logits.dim(1); ++c) {
      if (logits(i, c) > logits(i, best)) best = c;
    }
    if (best == data.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double train_and_evaluate(const synth::Dataset& train,
                          const synth::Dataset& test, const QatConfig& qat,
                          const TrainConfig& cfg,
                          std::vector<std::int64_t> hidden) {
  std::vector<std::int64_t> sizes;
  sizes.push_back(train.features());
  for (auto h : hidden) sizes.push_back(h);
  sizes.push_back(train.classes);
  Mlp net(std::move(sizes), cfg.seed);
  Rng rng(cfg.seed ^ 0xabcdef);
  for (int e = 0; e < cfg.epochs; ++e) {
    net.train_epoch(train, qat, cfg, rng);
  }
  return net.evaluate(test, qat);
}

}  // namespace apnn::train

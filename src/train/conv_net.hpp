// Small convolutional network with quantization-aware training.
//
// Architecture: [conv3x3 -> (q)ReLU -> avgpool2] x 2 -> fc -> (q)ReLU ->
// fc -> softmax. Same QAT scheme as the MLP (BWN / uniform fake-quantized
// weights, clipped-ReLU activation quantization, straight-through
// gradients); convolutions give the activation bit width the compounding
// effect that separates binary from w1a2 the way the paper's CNNs do.
#pragma once

#include <cstdint>
#include <vector>

#include "src/layout/tensor.hpp"
#include "src/synth/dataset.hpp"
#include "src/train/mlp.hpp"

namespace apnn::train {

struct CnnConfig {
  std::int64_t in_c = 1;
  std::int64_t in_hw = 12;
  std::int64_t classes = 10;
  std::int64_t c1 = 8;   ///< channels after conv1
  std::int64_t c2 = 16;  ///< channels after conv2
  std::int64_t fc_hidden = 48;
};

class QatCnn {
 public:
  QatCnn(const CnnConfig& cfg, std::uint64_t seed);

  /// Forward for a batch {B, H, W, C}; returns logits {B, classes}.
  Tensor<float> forward(const Tensor<float>& x, const QatConfig& qat) const;

  /// One epoch of mini-batch SGD with momentum; returns mean training loss.
  double train_epoch(const synth::Dataset& data, const QatConfig& qat,
                     const TrainConfig& cfg, Rng& rng);

  /// Top-1 accuracy.
  double evaluate(const synth::Dataset& data, const QatConfig& qat) const;

  const CnnConfig& config() const { return cfg_; }

 private:
  struct Cache;  // forward activations for backprop
  Tensor<float> forward_impl(const Tensor<float>& x, const QatConfig& qat,
                             Cache* cache) const;
  void backward(const Cache& cache, const Tensor<float>& delta_logits,
                const QatConfig& qat, const TrainConfig& cfg);

  CnnConfig cfg_;
  // conv weights {Cout, KH, KW, Cin}; fc weights {out, in}; biases {out}.
  Tensor<float> conv1_w_, conv2_w_, fc1_w_, fc2_w_;
  Tensor<float> conv1_b_, conv2_b_, fc1_b_, fc2_b_;
  // momentum buffers, same shapes
  Tensor<float> vc1_w_, vc2_w_, vf1_w_, vf2_w_;
  Tensor<float> vc1_b_, vc2_b_, vf1_b_, vf2_b_;
};

/// Trains a fresh CNN and reports final test accuracy.
double train_and_evaluate_cnn(const synth::Dataset& train,
                              const synth::Dataset& test,
                              const QatConfig& qat, const TrainConfig& cfg,
                              const CnnConfig& arch);

}  // namespace apnn::train

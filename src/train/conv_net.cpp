#include "src/train/conv_net.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.hpp"

namespace apnn::train {

namespace {

constexpr int kK = 3;  // 3x3 convolutions with pad 1 throughout

/// z = conv3x3(x, w) + b; x {B,H,W,Cin}, w {Cout,3,3,Cin}, z {B,H,W,Cout}.
Tensor<float> conv_forward(const Tensor<float>& x, const Tensor<float>& w,
                           const Tensor<float>& b) {
  const std::int64_t bs = x.dim(0), h = x.dim(1), ww = x.dim(2),
                     cin = x.dim(3), cout = w.dim(0);
  Tensor<float> z({bs, h, ww, cout});
  for (std::int64_t n = 0; n < bs; ++n) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x2 = 0; x2 < ww; ++x2) {
        for (std::int64_t m = 0; m < cout; ++m) {
          float acc = b[m];
          for (int kh = 0; kh < kK; ++kh) {
            const std::int64_t iy = y + kh - 1;
            if (iy < 0 || iy >= h) continue;
            for (int kw = 0; kw < kK; ++kw) {
              const std::int64_t ix = x2 + kw - 1;
              if (ix < 0 || ix >= ww) continue;
              for (std::int64_t c = 0; c < cin; ++c) {
                acc += x(n, iy, ix, c) * w(m, kh, kw, c);
              }
            }
          }
          z(n, y, x2, m) = acc;
        }
      }
    }
  }
  return z;
}

/// dx = conv3x3_backward_data(dz, w): full correlation with flipped taps.
Tensor<float> conv_backward_data(const Tensor<float>& dz,
                                 const Tensor<float>& w,
                                 std::int64_t cin) {
  const std::int64_t bs = dz.dim(0), h = dz.dim(1), ww = dz.dim(2),
                     cout = dz.dim(3);
  Tensor<float> dx({bs, h, ww, cin});
  for (std::int64_t n = 0; n < bs; ++n) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x2 = 0; x2 < ww; ++x2) {
        for (std::int64_t m = 0; m < cout; ++m) {
          const float g = dz(n, y, x2, m);
          if (g == 0.f) continue;
          for (int kh = 0; kh < kK; ++kh) {
            const std::int64_t iy = y + kh - 1;
            if (iy < 0 || iy >= h) continue;
            for (int kw = 0; kw < kK; ++kw) {
              const std::int64_t ix = x2 + kw - 1;
              if (ix < 0 || ix >= ww) continue;
              for (std::int64_t c = 0; c < cin; ++c) {
                dx(n, iy, ix, c) += g * w(m, kh, kw, c);
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

/// dw[m][kh][kw][c] = sum over batch/space of dz * x; db[m] = sum dz.
void conv_backward_weights(const Tensor<float>& dz, const Tensor<float>& x,
                           Tensor<float>* dw, Tensor<float>* db) {
  const std::int64_t bs = dz.dim(0), h = dz.dim(1), ww = dz.dim(2),
                     cout = dz.dim(3), cin = x.dim(3);
  dw->fill(0.f);
  db->fill(0.f);
  for (std::int64_t n = 0; n < bs; ++n) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x2 = 0; x2 < ww; ++x2) {
        for (std::int64_t m = 0; m < cout; ++m) {
          const float g = dz(n, y, x2, m);
          if (g == 0.f) continue;
          (*db)[m] += g;
          for (int kh = 0; kh < kK; ++kh) {
            const std::int64_t iy = y + kh - 1;
            if (iy < 0 || iy >= h) continue;
            for (int kw = 0; kw < kK; ++kw) {
              const std::int64_t ix = x2 + kw - 1;
              if (ix < 0 || ix >= ww) continue;
              for (std::int64_t c = 0; c < cin; ++c) {
                (*dw)(m, kh, kw, c) += g * x(n, iy, ix, c);
              }
            }
          }
        }
      }
    }
  }
}

/// 2x2 average pooling; input spatial dims must be even.
Tensor<float> avgpool2(const Tensor<float>& x) {
  const std::int64_t bs = x.dim(0), h = x.dim(1), w = x.dim(2), c = x.dim(3);
  Tensor<float> y({bs, h / 2, w / 2, c});
  for (std::int64_t n = 0; n < bs; ++n) {
    for (std::int64_t py = 0; py < h / 2; ++py) {
      for (std::int64_t px = 0; px < w / 2; ++px) {
        for (std::int64_t cc = 0; cc < c; ++cc) {
          y(n, py, px, cc) = 0.25f * (x(n, 2 * py, 2 * px, cc) +
                                      x(n, 2 * py, 2 * px + 1, cc) +
                                      x(n, 2 * py + 1, 2 * px, cc) +
                                      x(n, 2 * py + 1, 2 * px + 1, cc));
        }
      }
    }
  }
  return y;
}

/// Backward of avgpool2: spreads each gradient over its 2x2 window.
Tensor<float> avgpool2_backward(const Tensor<float>& dy, std::int64_t h,
                                std::int64_t w) {
  const std::int64_t bs = dy.dim(0), c = dy.dim(3);
  Tensor<float> dx({bs, h, w, c});
  for (std::int64_t n = 0; n < bs; ++n) {
    for (std::int64_t py = 0; py < h / 2; ++py) {
      for (std::int64_t px = 0; px < w / 2; ++px) {
        for (std::int64_t cc = 0; cc < c; ++cc) {
          const float g = 0.25f * dy(n, py, px, cc);
          dx(n, 2 * py, 2 * px, cc) = g;
          dx(n, 2 * py, 2 * px + 1, cc) = g;
          dx(n, 2 * py + 1, 2 * px, cc) = g;
          dx(n, 2 * py + 1, 2 * px + 1, cc) = g;
        }
      }
    }
  }
  return dx;
}

/// Clipped-ReLU activation (+ optional fake quantization).
Tensor<float> activate(const Tensor<float>& z, const QatConfig& qat) {
  Tensor<float> a(z.shape());
  for (std::int64_t i = 0; i < z.numel(); ++i) a[i] = std::max(z[i], 0.f);
  return qat.enabled ? fake_quantize_activations(a, qat.abits) : a;
}

/// STE gradient mask of the clipped ReLU.
inline bool ste_pass(float z, const QatConfig& qat) {
  return qat.enabled ? (z > 0.f && z < 1.f) : (z > 0.f);
}

void init_tensor(Tensor<float>& t, Rng& rng, std::int64_t fan_in,
                 std::int64_t fan_out) {
  const double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void sgd_update(Tensor<float>& w, Tensor<float>& v, const Tensor<float>& g,
                const TrainConfig& cfg) {
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    v[i] = static_cast<float>(cfg.momentum * v[i] - cfg.lr * g[i]);
    w[i] += v[i];
  }
}

}  // namespace

struct QatCnn::Cache {
  Tensor<float> x0, z1, a1, p1, z2, a2, p2, z3, a3;
  Tensor<float> w1q, w2q, f1q;  // quantized weights used in the forward
};

QatCnn::QatCnn(const CnnConfig& cfg, std::uint64_t seed) : cfg_(cfg) {
  APNN_CHECK(cfg.in_hw % 4 == 0) << "two 2x2 pools need in_hw % 4 == 0";
  Rng rng(seed);
  conv1_w_ = Tensor<float>({cfg.c1, kK, kK, cfg.in_c});
  conv2_w_ = Tensor<float>({cfg.c2, kK, kK, cfg.c1});
  const std::int64_t feat = cfg.in_hw / 4 * (cfg.in_hw / 4) * cfg.c2;
  fc1_w_ = Tensor<float>({cfg.fc_hidden, feat});
  fc2_w_ = Tensor<float>({cfg.classes, cfg.fc_hidden});
  init_tensor(conv1_w_, rng, cfg.in_c * kK * kK, cfg.c1 * kK * kK);
  init_tensor(conv2_w_, rng, cfg.c1 * kK * kK, cfg.c2 * kK * kK);
  init_tensor(fc1_w_, rng, feat, cfg.fc_hidden);
  init_tensor(fc2_w_, rng, cfg.fc_hidden, cfg.classes);
  conv1_b_ = Tensor<float>({cfg.c1});
  conv2_b_ = Tensor<float>({cfg.c2});
  fc1_b_ = Tensor<float>({cfg.fc_hidden});
  fc2_b_ = Tensor<float>({cfg.classes});
  vc1_w_ = Tensor<float>(conv1_w_.shape());
  vc2_w_ = Tensor<float>(conv2_w_.shape());
  vf1_w_ = Tensor<float>(fc1_w_.shape());
  vf2_w_ = Tensor<float>(fc2_w_.shape());
  vc1_b_ = Tensor<float>(conv1_b_.shape());
  vc2_b_ = Tensor<float>(conv2_b_.shape());
  vf1_b_ = Tensor<float>(fc1_b_.shape());
  vf2_b_ = Tensor<float>(fc2_b_.shape());
}

Tensor<float> QatCnn::forward_impl(const Tensor<float>& x,
                                   const QatConfig& qat, Cache* cache) const {
  APNN_CHECK(x.rank() == 4 && x.dim(3) == cfg_.in_c) << "input must be NHWC";
  const std::int64_t bs = x.dim(0);
  const Tensor<float> w1q =
      qat.enabled ? fake_quantize_weights(conv1_w_, qat.wbits) : conv1_w_;
  const Tensor<float> w2q =
      qat.enabled ? fake_quantize_weights(conv2_w_, qat.wbits) : conv2_w_;
  const Tensor<float> f1q =
      qat.enabled ? fake_quantize_weights(fc1_w_, qat.wbits) : fc1_w_;

  Tensor<float> z1 = conv_forward(x, w1q, conv1_b_);
  Tensor<float> a1 = activate(z1, qat);
  Tensor<float> p1 = avgpool2(a1);
  Tensor<float> z2 = conv_forward(p1, w2q, conv2_b_);
  Tensor<float> a2 = activate(z2, qat);
  Tensor<float> p2 = avgpool2(a2);

  const std::int64_t feat = p2.numel() / bs;
  Tensor<float> z3({bs, cfg_.fc_hidden});
  for (std::int64_t n = 0; n < bs; ++n) {
    for (std::int64_t o = 0; o < cfg_.fc_hidden; ++o) {
      float acc = fc1_b_[o];
      const float* wrow = f1q.data() + o * feat;
      const float* frow = p2.data() + n * feat;
      for (std::int64_t i = 0; i < feat; ++i) acc += wrow[i] * frow[i];
      z3(n, o) = acc;
    }
  }
  Tensor<float> a3 = activate(z3, qat);
  // Float head (the paper's 32-bit output layer).
  Tensor<float> logits({bs, cfg_.classes});
  for (std::int64_t n = 0; n < bs; ++n) {
    for (std::int64_t o = 0; o < cfg_.classes; ++o) {
      float acc = fc2_b_[o];
      for (std::int64_t i = 0; i < cfg_.fc_hidden; ++i) {
        acc += fc2_w_(o, i) * a3(n, i);
      }
      logits(n, o) = acc;
    }
  }
  if (cache) {
    cache->x0 = x;
    cache->z1 = std::move(z1);
    cache->a1 = std::move(a1);
    cache->p1 = std::move(p1);
    cache->z2 = std::move(z2);
    cache->a2 = std::move(a2);
    cache->p2 = std::move(p2);
    cache->z3 = std::move(z3);
    cache->a3 = std::move(a3);
    cache->w1q = w1q;
    cache->w2q = w2q;
    cache->f1q = f1q;
  }
  return logits;
}

Tensor<float> QatCnn::forward(const Tensor<float>& x,
                              const QatConfig& qat) const {
  return forward_impl(x, qat, nullptr);
}

void QatCnn::backward(const Cache& cache, const Tensor<float>& delta,
                      const QatConfig& qat, const TrainConfig& cfg) {
  const std::int64_t bs = delta.dim(0);
  const std::int64_t feat = cache.p2.numel() / bs;

  // Head: dz4 = delta.
  Tensor<float> dfc2_w(fc2_w_.shape());
  Tensor<float> dfc2_b(fc2_b_.shape());
  Tensor<float> da3({bs, cfg_.fc_hidden});
  for (std::int64_t o = 0; o < cfg_.classes; ++o) {
    for (std::int64_t n = 0; n < bs; ++n) {
      const float g = delta(n, o);
      dfc2_b[o] += g;
      for (std::int64_t i = 0; i < cfg_.fc_hidden; ++i) {
        dfc2_w(o, i) += g * cache.a3(n, i);
        da3(n, i) += g * fc2_w_(o, i);
      }
    }
  }
  // fc1.
  Tensor<float> dz3({bs, cfg_.fc_hidden});
  for (std::int64_t i = 0; i < dz3.numel(); ++i) {
    dz3[i] = ste_pass(cache.z3[i], qat) ? da3[i] : 0.f;
  }
  Tensor<float> dfc1_w(fc1_w_.shape());
  Tensor<float> dfc1_b(fc1_b_.shape());
  Tensor<float> dp2_flat({bs, feat});
  for (std::int64_t o = 0; o < cfg_.fc_hidden; ++o) {
    for (std::int64_t n = 0; n < bs; ++n) {
      const float g = dz3(n, o);
      if (g == 0.f) continue;
      dfc1_b[o] += g;
      const float* frow = cache.p2.data() + n * feat;
      float* dwrow = dfc1_w.data() + o * feat;
      const float* wrow = cache.f1q.data() + o * feat;
      float* dprow = dp2_flat.data() + n * feat;
      for (std::int64_t i = 0; i < feat; ++i) {
        dwrow[i] += g * frow[i];
        dprow[i] += g * wrow[i];
      }
    }
  }
  // pool2 / conv2.
  const Tensor<float> dp2 = dp2_flat.reshaped(cache.p2.shape());
  Tensor<float> da2 =
      avgpool2_backward(dp2, cache.a2.dim(1), cache.a2.dim(2));
  Tensor<float> dz2(da2.shape());
  for (std::int64_t i = 0; i < dz2.numel(); ++i) {
    dz2[i] = ste_pass(cache.z2[i], qat) ? da2[i] : 0.f;
  }
  Tensor<float> dconv2_w(conv2_w_.shape());
  Tensor<float> dconv2_b(conv2_b_.shape());
  conv_backward_weights(dz2, cache.p1, &dconv2_w, &dconv2_b);
  Tensor<float> dp1 = conv_backward_data(dz2, cache.w2q, cfg_.c1);
  // pool1 / conv1.
  Tensor<float> da1 =
      avgpool2_backward(dp1, cache.a1.dim(1), cache.a1.dim(2));
  Tensor<float> dz1(da1.shape());
  for (std::int64_t i = 0; i < dz1.numel(); ++i) {
    dz1[i] = ste_pass(cache.z1[i], qat) ? da1[i] : 0.f;
  }
  Tensor<float> dconv1_w(conv1_w_.shape());
  Tensor<float> dconv1_b(conv1_b_.shape());
  conv_backward_weights(dz1, cache.x0, &dconv1_w, &dconv1_b);

  sgd_update(fc2_w_, vf2_w_, dfc2_w, cfg);
  sgd_update(fc2_b_, vf2_b_, dfc2_b, cfg);
  sgd_update(fc1_w_, vf1_w_, dfc1_w, cfg);
  sgd_update(fc1_b_, vf1_b_, dfc1_b, cfg);
  sgd_update(conv2_w_, vc2_w_, dconv2_w, cfg);
  sgd_update(conv2_b_, vc2_b_, dconv2_b, cfg);
  sgd_update(conv1_w_, vc1_w_, dconv1_w, cfg);
  sgd_update(conv1_b_, vc1_b_, dconv1_b, cfg);
}

double QatCnn::train_epoch(const synth::Dataset& data, const QatConfig& qat,
                           const TrainConfig& cfg, Rng& rng) {
  const std::int64_t n = data.size();
  const std::int64_t h = data.images.dim(1), w = data.images.dim(2),
                     c = data.images.dim(3);
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::int64_t i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.uniform_int(0, i))]);
  }
  double total_loss = 0;
  std::int64_t batches = 0;
  const std::int64_t sample = h * w * c;
  for (std::int64_t start = 0; start < n; start += cfg.batch) {
    const std::int64_t bs = std::min<std::int64_t>(cfg.batch, n - start);
    Tensor<float> x({bs, h, w, c});
    std::vector<int> labels(static_cast<std::size_t>(bs));
    for (std::int64_t bi = 0; bi < bs; ++bi) {
      const std::int64_t idx = order[static_cast<std::size_t>(start + bi)];
      for (std::int64_t f = 0; f < sample; ++f) {
        x[bi * sample + f] = data.images[idx * sample + f];
      }
      labels[static_cast<std::size_t>(bi)] =
          data.labels[static_cast<std::size_t>(idx)];
    }
    Cache cache;
    const Tensor<float> logits = forward_impl(x, qat, &cache);
    Tensor<float> delta(logits.shape());
    double loss = 0;
    for (std::int64_t bi = 0; bi < bs; ++bi) {
      float maxv = logits(bi, 0);
      for (std::int64_t cc = 1; cc < cfg_.classes; ++cc) {
        maxv = std::max(maxv, logits(bi, cc));
      }
      double denom = 0;
      for (std::int64_t cc = 0; cc < cfg_.classes; ++cc) {
        denom += std::exp(static_cast<double>(logits(bi, cc) - maxv));
      }
      const int y = labels[static_cast<std::size_t>(bi)];
      for (std::int64_t cc = 0; cc < cfg_.classes; ++cc) {
        const double pc =
            std::exp(static_cast<double>(logits(bi, cc) - maxv)) / denom;
        delta(bi, cc) = static_cast<float>((pc - (cc == y ? 1.0 : 0.0)) /
                                           static_cast<double>(bs));
        if (cc == y) loss -= std::log(std::max(pc, 1e-12));
      }
    }
    total_loss += loss / static_cast<double>(bs);
    ++batches;
    backward(cache, delta, qat, cfg);
  }
  return total_loss / std::max<std::int64_t>(1, batches);
}

double QatCnn::evaluate(const synth::Dataset& data,
                        const QatConfig& qat) const {
  const Tensor<float>& imgs = data.images;
  const Tensor<float> logits = forward(imgs, qat);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < data.size(); ++i) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < logits.dim(1); ++c) {
      if (logits(i, c) > logits(i, best)) best = c;
    }
    if (best == data.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double train_and_evaluate_cnn(const synth::Dataset& train,
                              const synth::Dataset& test,
                              const QatConfig& qat, const TrainConfig& cfg,
                              const CnnConfig& arch) {
  QatCnn net(arch, cfg.seed);
  Rng rng(cfg.seed ^ 0xf00d);
  for (int e = 0; e < cfg.epochs; ++e) {
    net.train_epoch(train, qat, cfg, rng);
  }
  return net.evaluate(test, qat);
}

}  // namespace apnn::train

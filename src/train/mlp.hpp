// Minimal float training substrate with quantization-aware training (QAT).
//
// Used only for the Table 1 accuracy experiment and the quantization
// trade-off example. Follows the paper's algorithm lineage (§2.1): full-
// precision master weights, DoReFa/LQ-Nets-style fake quantization in the
// forward pass, straight-through-estimator gradients.
//
//  * Weights: wbits == 1 -> BWN binarization (sign(w) * E|w|);
//             wbits  > 1 -> symmetric uniform fake quantization.
//  * Activations: ReLU clipped to [0, 1], quantized to abits uniform levels
//    (abits == 0 disables activation quantization). The sign-activation
//    binary case is abits == 1 over the clipped range.
#pragma once

#include <cstdint>
#include <vector>

#include "src/layout/tensor.hpp"
#include "src/synth/dataset.hpp"

namespace apnn::train {

struct QatConfig {
  bool enabled = false;
  int wbits = 1;
  int abits = 2;

  static QatConfig off() { return {}; }
  static QatConfig wa(int wbits, int abits) { return {true, wbits, abits}; }
};

struct TrainConfig {
  double lr = 0.05;
  double momentum = 0.9;
  std::int64_t batch = 32;
  int epochs = 30;
  std::uint64_t seed = 7;
};

/// Fully connected network: sizes = {in, hidden..., classes}; hidden layers
/// use (quantized) ReLU, the head is a float linear layer (the paper's
/// output layer stays 32-bit, §5.1).
class Mlp {
 public:
  Mlp(std::vector<std::int64_t> sizes, std::uint64_t seed);

  /// Forward for a batch {B, in}; returns logits {B, classes}.
  Tensor<float> forward(const Tensor<float>& x, const QatConfig& qat) const;

  /// One epoch of mini-batch SGD with momentum on softmax cross-entropy;
  /// returns the mean training loss.
  double train_epoch(const synth::Dataset& data, const QatConfig& qat,
                     const TrainConfig& cfg, Rng& rng);

  /// Top-1 accuracy on a dataset.
  double evaluate(const synth::Dataset& data, const QatConfig& qat) const;

  int num_layers() const { return static_cast<int>(w_.size()); }
  const Tensor<float>& weights(int layer) const {
    return w_[static_cast<std::size_t>(layer)];
  }

 private:
  struct ForwardCache {
    std::vector<Tensor<float>> a;   ///< post-activation (quantized) inputs
    std::vector<Tensor<float>> z;   ///< pre-activations
    std::vector<Tensor<float>> wq;  ///< quantized weights used
  };
  Tensor<float> forward_impl(const Tensor<float>& x, const QatConfig& qat,
                             ForwardCache* cache) const;

  std::vector<std::int64_t> sizes_;
  std::vector<Tensor<float>> w_;   ///< {out, in} per layer
  std::vector<Tensor<float>> b_;   ///< {out}
  std::vector<Tensor<float>> vw_;  ///< momentum buffers
  std::vector<Tensor<float>> vb_;
};

/// Fake-quantizes a weight tensor (returns the dequantized values used in
/// the QAT forward pass). Exposed for tests.
Tensor<float> fake_quantize_weights(const Tensor<float>& w, int wbits);

/// Fake-quantizes clipped activations in [0, 1] to `abits` uniform levels.
Tensor<float> fake_quantize_activations(const Tensor<float>& a, int abits);

/// Trains a fresh MLP on train/test splits and reports final test accuracy.
double train_and_evaluate(const synth::Dataset& train,
                          const synth::Dataset& test, const QatConfig& qat,
                          const TrainConfig& cfg,
                          std::vector<std::int64_t> hidden = {96, 64});

}  // namespace apnn::train
